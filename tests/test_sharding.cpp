// Multi-device sharding (src/gpusim/device_group, src/sharding): the
// DeviceGroup peer-transfer cost model and its accounting invariant (the
// sum of per-device DeviceStats deltas plus peer-pair deltas tiles the
// group totals exactly), the shard planner (component packing, hub
// fallback, degrade estimate), and the cross-device equivalence property:
// for any matrix and any group size, ShardedFactorizer's factors and
// solves are bit-identical to a single device running SparseLU with the
// same options — sharding models time, never arithmetic. Failing
// equivalence cases shrink to the smallest (seed, n, devices) triple.
//
// Also here: the per-device-state audit regressions — fusion ready-flag
// arenas, scrolling-window arenas, and Refactorizer device buffers must
// be per-instance, so concurrent pipelines on separate simulated devices
// cannot corrupt each other (the TSan CI leg runs these suites).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/sparse_lu.hpp"
#include "fault/fault.hpp"
#include "gpusim/device_group.hpp"
#include "matrix/generators.hpp"
#include "refactor/refactor.hpp"
#include "scheduling/levelize.hpp"
#include "service/factor_service.hpp"
#include "sharding/shard_plan.hpp"
#include "sharding/sharded_factorizer.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace e2elu {
namespace {

using gpusim::DeviceGroup;
using gpusim::DeviceSpec;
using gpusim::DeviceStats;
using gpusim::GroupStats;
using gpusim::PeerSpec;
using gpusim::PeerStats;
using sharding::ShardedFactorizer;
using sharding::ShardingOptions;
using sharding::ShardPlan;
using sharding::ShardPlanOptions;
using sharding::ShardReport;

DeviceSpec test_spec() { return DeviceSpec::v100_with_memory(64u << 20); }

ShardingOptions group_of(int devices, bool allow_degrade = true) {
  ShardingOptions sopt;
  sopt.num_devices = devices;
  sopt.allow_degrade = allow_degrade;
  return sopt;
}

ShardPlanOptions plan_over(int devices) {
  ShardPlanOptions popt;
  popt.num_devices = devices;
  return popt;
}

/// Base options shared by both sides of every equivalence comparison:
/// identity permutations and a fixed symbolic driver, so the only degree
/// of freedom between the single-device and sharded runs is the device
/// count. `pool` must be single-threaded for bit-reproducible kernels.
Options equiv_options(ThreadPool& pool) {
  Options opt;
  opt.device = test_spec();
  opt.mode = Mode::OutOfCoreGpuDynamic;
  opt.numeric_format = NumericFormat::SparseBinarySearch;
  opt.ordering = Ordering::None;
  opt.match_diagonal = false;
  opt.pool = &pool;
  return opt;
}

std::vector<value_t> rhs_for(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = static_cast<value_t>(rng.next_double(-1.0, 1.0));
  return b;
}

/// Bitwise factor equality — not "close", identical. The sharding
/// invariant is exact, so the comparison is too.
bool values_identical(const std::vector<value_t>& a,
                      const std::vector<value_t>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(value_t)) == 0);
}

std::optional<std::string> factors_mismatch(const FactorResult& got,
                                            const FactorResult& want) {
  if (got.row_perm != want.row_perm || got.col_perm != want.col_perm) {
    return "permutations differ";
  }
  if (got.l.row_ptr != want.l.row_ptr || got.l.col_idx != want.l.col_idx ||
      got.u.row_ptr != want.u.row_ptr || got.u.col_idx != want.u.col_idx) {
    return "factor patterns differ";
  }
  if (!values_identical(got.l.values, want.l.values)) return "L values differ";
  if (!values_identical(got.u.values, want.u.values)) return "U values differ";
  return std::nullopt;
}

/// Block-diagonal matrix of `num_blocks` dense blocks of size `bs`: the
/// ideal sharding input — every block is one dependency component, every
/// level is `num_blocks` wide, and a partition along block boundaries has
/// zero cross-shard edges.
Csr many_dense_blocks(index_t num_blocks, index_t bs, std::uint64_t seed) {
  Rng rng(seed);
  const index_t n = num_blocks * bs;
  Csr a;
  a.n = n;
  a.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t blk = 0; blk < num_blocks; ++blk) {
    const index_t base = blk * bs;
    for (index_t r = 0; r < bs; ++r) {
      const index_t i = base + r;
      for (index_t c = 0; c < bs; ++c) {
        a.col_idx.push_back(base + c);
        a.values.push_back(
            i == base + c ? static_cast<value_t>(bs) + 1.0
                          : static_cast<value_t>(rng.next_double(-1.0, 1.0)));
      }
      a.row_ptr[static_cast<std::size_t>(i) + 1] =
          a.row_ptr[static_cast<std::size_t>(i)] + bs;
    }
  }
  return a;
}

void expect_integer_stats_eq(const DeviceStats& a, const DeviceStats& b) {
  EXPECT_EQ(a.host_launches, b.host_launches);
  EXPECT_EQ(a.device_launches, b.device_launches);
  EXPECT_EQ(a.kernel_ops, b.kernel_ops);
  EXPECT_EQ(a.h2d_bytes, b.h2d_bytes);
  EXPECT_EQ(a.d2h_bytes, b.d2h_bytes);
  EXPECT_EQ(a.page_faults, b.page_faults);
  EXPECT_EQ(a.page_fault_groups, b.page_fault_groups);
  EXPECT_EQ(a.prefetch_bytes, b.prefetch_bytes);
  EXPECT_EQ(a.fused_launches, b.fused_launches);
  EXPECT_EQ(a.fused_levels, b.fused_levels);
}

void expect_time_stats_near(const DeviceStats& a, const DeviceStats& b) {
  const double tol = 1e-9 * (1.0 + a.sim_total_us());
  EXPECT_NEAR(a.sim_kernel_us, b.sim_kernel_us, tol);
  EXPECT_NEAR(a.sim_launch_us, b.sim_launch_us, tol);
  EXPECT_NEAR(a.sim_transfer_us, b.sim_transfer_us, tol);
  EXPECT_NEAR(a.sim_fault_us, b.sim_fault_us, tol);
  EXPECT_NEAR(a.sim_occupancy_us, b.sim_occupancy_us, tol);
}

// ---------------------------------------------------------------------------
// DeviceGroup: the interconnect cost model and its accounting separation.

TEST(DeviceGroup, MembersAreIndependentDevices) {
  DeviceGroup g(test_spec(), 3);
  ASSERT_EQ(g.size(), 3);
  // Distinct per-member identities and counters.
  g.device(0).launch({.name = "only_dev0", .blocks = 4},
                     [](std::int64_t, gpusim::KernelContext& ctx) {
                       ctx.add_ops(100);
                     });
  EXPECT_EQ(g.device(0).stats().host_launches, 1u);
  EXPECT_EQ(g.device(0).stats().kernel_ops, 400u);
  EXPECT_EQ(g.device(1).stats().host_launches, 0u);
  EXPECT_EQ(g.device(2).stats().kernel_ops, 0u);
  EXPECT_GT(g.device(0).elapsed_us(), 0.0);
  EXPECT_EQ(g.device(1).elapsed_us(), 0.0);
}

TEST(DeviceGroup, PeerCopyChargesThePairOnly) {
  const PeerSpec peer{.bandwidth_gbps = 40.0, .latency_us = 2.0};
  DeviceGroup g(test_spec(), 2, peer);
  const std::size_t bytes = 4000;
  g.peer_copy(0, 1, bytes);

  const PeerStats& p01 = g.peer_stats(0, 1);
  EXPECT_EQ(p01.transfers, 1u);
  EXPECT_EQ(p01.bytes, bytes);
  EXPECT_DOUBLE_EQ(p01.sim_us, peer.time_us(bytes));
  // The reverse pair is untouched: (src, dst) pairs are ordered.
  EXPECT_EQ(g.peer_stats(1, 0).transfers, 0u);
  // Hard separation: peer traffic never leaks into the members' own PCIe
  // counters — that is what makes the tiling invariant exact.
  for (int d = 0; d < 2; ++d) {
    EXPECT_EQ(g.device(d).stats().h2d_bytes, 0u);
    EXPECT_EQ(g.device(d).stats().d2h_bytes, 0u);
  }
  EXPECT_EQ(g.peer_total().bytes, bytes);
}

TEST(DeviceGroup, PeerCopyIsAFullBarrierOnBothEnds) {
  const PeerSpec peer{.bandwidth_gbps = 40.0, .latency_us = 2.0};
  DeviceGroup g(test_spec(), 2, peer);
  g.device(0).launch({.name = "produce", .blocks = 160},
                     [](std::int64_t, gpusim::KernelContext& ctx) {
                       ctx.add_ops(100000);
                     });
  const double produced_at = g.device(0).elapsed_us();
  ASSERT_GT(produced_at, 0.0);

  g.peer_copy(0, 1, 1 << 20);
  // Both members sit behind the copy's completion, like a default-stream
  // cudaMemcpyPeer: the idle destination inherits the producer's clock
  // plus the link time.
  const double done = produced_at + peer.time_us(1 << 20);
  EXPECT_DOUBLE_EQ(g.device(0).elapsed_us(), done);
  EXPECT_DOUBLE_EQ(g.device(1).elapsed_us(), done);
  EXPECT_DOUBLE_EQ(g.elapsed_us(), done);
}

TEST(DeviceGroup, AsyncPeerCopyOrdersConsumerAfterProducer) {
  const PeerSpec peer{.bandwidth_gbps = 40.0, .latency_us = 2.0};
  DeviceGroup g(test_spec(), 3, peer);
  gpusim::Stream s0(g.device(0));
  gpusim::Stream s1(g.device(1));

  g.device(0).launch({.name = "produce", .blocks = 160, .stream = &s0},
                     [](std::int64_t, gpusim::KernelContext& ctx) {
                       ctx.add_ops(500000);
                     });
  const double produced_at = g.device(0).elapsed_us();
  const std::size_t big = 4u << 20;  // link time far above a tiny kernel's
  g.peer_copy_async(0, 1, big, s0, s1);
  // The consumer's next kernel on the destination stream starts only
  // after the transfer lands.
  g.device(1).launch({.name = "consume", .blocks = 1, .stream = &s1},
                     [](std::int64_t, gpusim::KernelContext& ctx) {
                       ctx.add_ops(10);
                     });
  // The producer's stream is not blocked behind the copy: its next kernel
  // queues right after the producing one.
  g.device(0).launch({.name = "next_on_src", .blocks = 1, .stream = &s0},
                     [](std::int64_t, gpusim::KernelContext& ctx) {
                       ctx.add_ops(10);
                     });
  g.synchronize();

  EXPECT_GE(g.device(1).elapsed_us(), produced_at + peer.time_us(big) - 1e-9);
  EXPECT_LT(g.device(0).elapsed_us(), g.device(1).elapsed_us());
  // An uninvolved member's timeline is untouched.
  EXPECT_DOUBLE_EQ(g.device(2).elapsed_us(), 0.0);
  EXPECT_EQ(g.peer_stats(0, 1).transfers, 1u);
}

TEST(DeviceGroup, GroupStatsTileMemberAndPairStats) {
  DeviceGroup g(test_spec(), 3);
  // Mixed work: kernels on two members, an explicit host copy on one,
  // peer traffic in both directions of one pair.
  g.device(0).launch({.name = "a", .blocks = 8},
                     [](std::int64_t, gpusim::KernelContext& ctx) {
                       ctx.add_ops(50);
                     });
  g.device(1).launch({.name = "b", .blocks = 2},
                     [](std::int64_t, gpusim::KernelContext& ctx) {
                       ctx.add_ops(10);
                     });
  g.device(1).copy_h2d(1234);
  g.peer_copy(0, 2, 100);
  g.peer_copy(2, 0, 200);

  GroupStats gs = g.stats();
  DeviceStats sum;
  double max_elapsed = 0;
  for (int d = 0; d < g.size(); ++d) {
    gpusim::accumulate(sum, g.device(d).stats());
    max_elapsed = std::max(max_elapsed, g.device(d).elapsed_us());
  }
  expect_integer_stats_eq(gs.devices, sum);
  expect_time_stats_near(gs.devices, sum);
  EXPECT_DOUBLE_EQ(gs.devices.sim_elapsed_us, max_elapsed);
  EXPECT_DOUBLE_EQ(gs.elapsed_us, max_elapsed);
  EXPECT_EQ(gs.peer.transfers, 2u);
  EXPECT_EQ(gs.peer.bytes, 300u);
  EXPECT_EQ(gs.peer.bytes,
            g.peer_stats(0, 2).bytes + g.peer_stats(2, 0).bytes);
}

/// The tiling invariant on a real factorization: sum the per-member
/// deltas over a ShardedFactorizer run and they must reproduce the
/// group's delta exactly, with peer traffic accounted once, on the pairs.
void expect_group_delta_tiles(DeviceGroup& g,
                              const std::vector<DeviceStats>& member_before,
                              const GroupStats& group_before) {
  const GroupStats delta = g.stats().since(group_before);
  DeviceStats sum;
  for (int d = 0; d < g.size(); ++d) {
    gpusim::accumulate(
        sum, g.device(d).stats().since(member_before[static_cast<std::size_t>(d)]));
  }
  expect_integer_stats_eq(delta.devices, sum);
  expect_time_stats_near(delta.devices, sum);
}

TEST(DeviceGroup, AccountingTilesAcrossAFactorization) {
  const Csr a = many_dense_blocks(64, 8, 77);
  ThreadPool serial(1);
  ShardedFactorizer sharded(equiv_options(serial),
                            group_of(4, false));
  DeviceGroup& g = sharded.group();

  std::vector<DeviceStats> member_before;
  for (int d = 0; d < g.size(); ++d) member_before.push_back(g.device(d).snapshot());
  const GroupStats group_before = g.stats();

  ShardReport rep;
  const FactorResult res = sharded.factorize(a, rep);
  expect_group_delta_tiles(g, member_before, group_before);

  // The numeric-phase deltas the report carries tile the numeric phase:
  // every op charged to the phase total sits on exactly one member, and
  // every launch is counted on exactly one member.
  ASSERT_EQ(static_cast<int>(rep.device_deltas.size()), g.size());
  std::uint64_t delta_ops = 0, delta_launches = 0;
  for (const DeviceStats& d : rep.device_deltas) {
    delta_ops += d.kernel_ops;
    delta_launches += d.host_launches + d.device_launches;
  }
  EXPECT_EQ(delta_ops, res.numeric.ops);
  EXPECT_EQ(delta_launches, res.numeric.launches);
  // All four members actually executed, and the cut is empty for a
  // block-diagonal matrix: component sharding moved zero peer bytes.
  EXPECT_EQ(rep.devices_used, 4);
  EXPECT_EQ(rep.cross_edges, 0);
  EXPECT_EQ(rep.peer.bytes, 0u);
  for (const DeviceStats& d : rep.device_deltas) EXPECT_GT(d.kernel_ops, 0u);
}

TEST(DeviceGroup, AccountingTilesUnderFaultInjection) {
  const Csr a = many_dense_blocks(64, 8, 78);
  ThreadPool serial(1);
  ShardedFactorizer sharded(equiv_options(serial),
                            group_of(4, false));
  DeviceGroup& g = sharded.group();

  std::vector<DeviceStats> member_before;
  for (int d = 0; d < g.size(); ++d) member_before.push_back(g.device(d).snapshot());
  const GroupStats group_before = g.stats();

  ShardReport rep;
  FactorResult res;
  {
    fault::ScopedPlan plan("launch=shard_numeric_dev2@1");
    res = sharded.factorize(a, rep);
  }
  // Member 2 was dropped and the shards re-packed onto the survivors —
  // and the accounting still tiles: the aborted attempt's charges sit on
  // the members that made them.
  EXPECT_EQ(rep.repacks, 1);
  ASSERT_EQ(rep.failed_devices.size(), 1u);
  EXPECT_EQ(rep.failed_devices[0], 2);
  EXPECT_EQ(rep.devices_used, 3);
  expect_group_delta_tiles(g, member_before, group_before);

  // Recovery must not bend the equivalence invariant either.
  ThreadPool serial2(1);
  const FactorResult want = SparseLU(equiv_options(serial2)).factorize(a);
  EXPECT_EQ(factors_mismatch(res, want), std::nullopt);
}

// ---------------------------------------------------------------------------
// Shard planning.

TEST(Sharding, PlanPacksIndependentComponentsWithoutCuts) {
  const Csr a = many_dense_blocks(8, 4, 5);
  const auto graph =
      scheduling::build_dependency_graph(a, Options{}.dependency_rule);
  const ShardPlan plan =
      build_shard_plan(graph, a, plan_over(4));

  EXPECT_EQ(plan.num_components, 8);
  EXPECT_EQ(plan.cross_edges, 0);
  EXPECT_FALSE(plan.irregular_fallback);
  EXPECT_DOUBLE_EQ(plan.balance(), 1.0);  // equal blocks pack evenly
  // Whole components travel together: a block never splits across owners.
  for (index_t blk = 0; blk < 8; ++blk) {
    for (index_t c = 1; c < 4; ++c) {
      EXPECT_EQ(plan.owner[blk * 4 + c], plan.owner[blk * 4]);
    }
  }
  // Every member owns something, and the owner lists partition 0..n-1.
  std::size_t total = 0;
  for (const auto& cols : plan.device_cols) {
    EXPECT_FALSE(cols.empty());
    total += cols.size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(a.n));
}

TEST(Sharding, PlanHubFallbackCarvesContiguousRuns) {
  // One dense block = one giant component carrying 100% of the footprint:
  // the packer must switch to irregular contiguous blocking.
  const Csr a = many_dense_blocks(1, 64, 6);
  const auto graph =
      scheduling::build_dependency_graph(a, Options{}.dependency_rule);
  const ShardPlan plan =
      build_shard_plan(graph, a, plan_over(4));

  EXPECT_EQ(plan.num_components, 1);
  EXPECT_TRUE(plan.irregular_fallback);
  EXPECT_GT(plan.cross_edges, 0);
  EXPECT_LT(plan.balance(), 2.0);
  // One contiguous index run per device (the seams are the only cuts).
  for (index_t j = 1; j < a.n; ++j) {
    EXPECT_GE(plan.owner[j], plan.owner[j - 1]);
  }
  for (const auto& cols : plan.device_cols) EXPECT_FALSE(cols.empty());
}

TEST(Sharding, SingleShardPlanOwnsEveryColumn) {
  const Csr a = many_dense_blocks(4, 4, 7);
  const ShardPlan plan = sharding::single_shard_plan(a, 1, 0);
  EXPECT_EQ(plan.num_devices, 1);
  EXPECT_EQ(plan.cross_edges, 0);
  for (index_t j = 0; j < a.n; ++j) EXPECT_EQ(plan.owner[j], 0);
  EXPECT_EQ(plan.device_cols[0].size(), static_cast<std::size_t>(a.n));
}

TEST(Sharding, EstimateSeparatesMeshesFromSerialChains) {
  // Wide independent levels + a launch-cheap device: the model must
  // predict a real win. 512 blocks make every level 512 wide — past
  // max_concurrent_blocks even when quartered.
  DeviceSpec fast = test_spec();
  fast.host_launch_us /= 256;
  fast.device_launch_us /= 256;

  const Csr mesh = many_dense_blocks(512, 8, 8);
  const auto mesh_graph =
      scheduling::build_dependency_graph(mesh, Options{}.dependency_rule);
  const auto mesh_sched = scheduling::levelize_sequential(mesh_graph);
  const ShardPlan mesh_plan = build_shard_plan(
      mesh_graph, mesh, plan_over(4));
  const sharding::ShardEstimate mesh_est = sharding::estimate_sharded_numeric(
      mesh_plan, mesh_graph, mesh, mesh_sched, fast, 40.0, 2.0);
  EXPECT_GT(mesh_est.predicted_speedup(), 1.5);

  // A single dense block is a serial chain of width-1 levels: splitting
  // it can only add peer latency, and the model must say so.
  const Csr chain = many_dense_blocks(1, 96, 9);
  const auto chain_graph =
      scheduling::build_dependency_graph(chain, Options{}.dependency_rule);
  const auto chain_sched = scheduling::levelize_sequential(chain_graph);
  const ShardPlan chain_plan = build_shard_plan(
      chain_graph, chain, plan_over(4));
  const sharding::ShardEstimate chain_est = sharding::estimate_sharded_numeric(
      chain_plan, chain_graph, chain, chain_sched, fast, 40.0, 2.0);
  EXPECT_LT(chain_est.predicted_speedup(), 1.1);
  EXPECT_LT(chain_est.predicted_speedup(), mesh_est.predicted_speedup());
}

TEST(Sharding, DegradedRunMatchesSingleDeviceCost) {
  // A hub-coupled circuit under the stock launch-heavy spec: the degrade
  // decision must fire, and the degraded run must charge exactly what a
  // one-member group charges — "no worse than one device" by construction.
  Csr a = gen_circuit(600, 4.0, 3, 24, 0x5eed);
  ThreadPool serial(1);

  ShardReport rep4;
  ShardedFactorizer four(equiv_options(serial), group_of(4));
  const FactorResult res4 = four.factorize(a, rep4);
  EXPECT_TRUE(rep4.degraded);
  EXPECT_EQ(rep4.devices_used, 1);
  EXPECT_EQ(rep4.peer.bytes, 0u);

  ShardReport rep1;
  ShardedFactorizer one(equiv_options(serial), group_of(1));
  const FactorResult res1 = one.factorize(a, rep1);
  EXPECT_NEAR(rep4.numeric_elapsed_us, rep1.numeric_elapsed_us,
              1e-9 * (1.0 + rep1.numeric_elapsed_us));
  EXPECT_EQ(factors_mismatch(res4, res1), std::nullopt);
}

// ---------------------------------------------------------------------------
// Cross-device equivalence property: for any (seed, n, devices), sharded
// factors and solves are bit-identical to one device's.

struct ShardCase {
  std::string kind;
  Csr a;
};

/// Derives the whole case from (seed, n): alternating blocked-planar
/// meshes (component sharding, zero cut) and hub circuits (irregular
/// carve, live peer traffic), so the sweep exercises both planner paths.
ShardCase make_shard_case(std::uint64_t seed, index_t n) {
  Rng rng(seed);
  ShardCase c;
  if (seed % 2 == 0) {
    const index_t bs = 16 + static_cast<index_t>(rng.next_below(32));
    c.kind = "blocked_planar";
    c.a = gen_blocked_planar(n, bs, 3.0 + rng.next_double() * 2.0,
                             4 + static_cast<index_t>(rng.next_below(8)),
                             rng.next_u64());
  } else {
    c.kind = "circuit";
    c.a = gen_circuit(n, 3.0 + rng.next_double() * 2.0,
                      1 + static_cast<index_t>(rng.next_below(3)),
                      8 + static_cast<index_t>(rng.next_below(16)),
                      rng.next_u64());
  }
  return c;
}

/// One equivalence check. allow_degrade is off so the run actually
/// executes on `devices` members (the property must hold on the real
/// multi-device path, peer transfers included, not via the degrade
/// escape hatch).
std::optional<std::string> equivalence_failure(std::uint64_t seed, index_t n,
                                               int devices) {
  const ShardCase c = make_shard_case(seed, n);
  ThreadPool ref_pool(1);
  FactorResult want;
  try {
    want = SparseLU(equiv_options(ref_pool)).factorize(c.a);
  } catch (const std::exception& e) {
    return "single-device factorize threw: " + std::string(e.what());
  }

  ThreadPool shard_pool(1);
  ShardedFactorizer sharded(equiv_options(shard_pool),
                            group_of(devices, false));
  ShardReport rep;
  FactorResult got;
  try {
    got = sharded.factorize(c.a, rep);
  } catch (const std::exception& e) {
    return "sharded factorize threw: " + std::string(e.what());
  }
  if (auto m = factors_mismatch(got, want)) return c.kind + ": " + *m;

  const std::vector<value_t> b = rhs_for(c.a.n, seed ^ 0xb0b);
  const std::vector<value_t> want_x = SparseLU::solve(want, b);
  sharding::ShardSolveStats sstats;
  const std::vector<value_t> got_x = sharded.solve(got, b, &sstats);
  if (!values_identical(got_x, want_x)) return c.kind + ": solve differs";
  if (devices > 1 && sstats.launches == 0) {
    return c.kind + ": sharded solve charged no kernels";
  }
  return std::nullopt;
}

TEST(Sharding, FactorsAndSolvesMatchSingleDeviceBitForBit) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const index_t n0 = 256 + static_cast<index_t>((seed * 131) % 400);
    for (const int devices0 : {1, 2, 4, 8}) {
      std::optional<std::string> failure =
          equivalence_failure(seed, n0, devices0);
      if (!failure.has_value()) continue;

      // Shrink: halve n while the failure reproduces, then halve the
      // group, so the report names the smallest failing triple.
      index_t n = n0;
      int devices = devices0;
      std::string detail = *failure;
      while (n / 2 >= 32) {
        const auto smaller = equivalence_failure(seed, n / 2, devices);
        if (!smaller.has_value()) break;
        n /= 2;
        detail = *smaller;
      }
      while (devices / 2 >= 1) {
        const auto fewer = equivalence_failure(seed, n, devices / 2);
        if (!fewer.has_value()) break;
        devices /= 2;
        detail = *fewer;
      }
      ADD_FAILURE() << "smallest failing case: seed=" << seed << " n=" << n
                    << " devices=" << devices << " — " << detail;
      return;
    }
  }
}

TEST(Sharding, HubMatricesShipPeerTrafficAndStayExact) {
  // Force the irregular-carve path on a hub circuit: cross-shard edges
  // exist, so peer bytes must actually flow — and the factors must still
  // be bit-identical, because peer traffic models time, not data reuse.
  const Csr a = gen_circuit(500, 4.0, 2, 20, 0xc0ffee);
  ThreadPool serial(1);
  ShardedFactorizer sharded(equiv_options(serial),
                            group_of(4, false));
  ShardReport rep;
  const FactorResult got = sharded.factorize(a, rep);
  EXPECT_TRUE(rep.irregular_fallback);
  EXPECT_GT(rep.cross_edges, 0);
  EXPECT_GT(rep.peer.bytes, 0u);
  EXPECT_GT(rep.peer.transfers, 0u);

  ThreadPool serial2(1);
  const FactorResult want = SparseLU(equiv_options(serial2)).factorize(a);
  EXPECT_EQ(factors_mismatch(got, want), std::nullopt);

  const std::vector<value_t> b = rhs_for(a.n, 0xdead);
  sharding::ShardSolveStats sstats;
  const std::vector<value_t> x = sharded.solve(got, b, &sstats);
  EXPECT_TRUE(values_identical(x, SparseLU::solve(want, b)));
  // Boundary x entries cross the link during the solves too.
  EXPECT_GT(sstats.peer.bytes, 0u);
  EXPECT_GT(sstats.elapsed_us, 0.0);
}

// ---------------------------------------------------------------------------
// Service routing: big jobs go to the device group.

TEST(Sharding, ServiceRoutesBigJobsToTheGroup) {
  service::FactorServiceOptions sopt;
  sopt.workers = 1;
  sopt.deterministic = true;
  sopt.pipeline.device = test_spec();
  sopt.pipeline.mode = Mode::OutOfCoreGpuDynamic;
  sopt.pipeline.numeric_format = NumericFormat::SparseBinarySearch;
  sopt.pipeline.ordering = Ordering::None;
  sopt.pipeline.match_diagonal = false;
  sopt.sharding.enabled = true;
  sopt.sharding.devices = 2;
  sopt.sharding.min_n = 500;

  const Csr big = many_dense_blocks(80, 8, 21);   // n = 640 >= min_n
  const Csr small = many_dense_blocks(16, 8, 22);  // n = 128 < min_n
  const std::vector<value_t> b = rhs_for(big.n, 0xabc);

  service::FactorService svc(sopt);
  auto fut_big = svc.submit(big, b, "tenant-a");
  auto fut_small = svc.submit(small, std::nullopt, "tenant-a");
  service::JobResult rbig = fut_big.get();
  service::JobResult rsmall = fut_small.get();

  EXPECT_TRUE(rbig.sharded);
  EXPECT_FALSE(rbig.cache_hit);
  EXPECT_TRUE(rbig.report.sharded);
  EXPECT_GE(rbig.report.sharded_devices, 1);
  EXPECT_GT(rbig.launches, 0u);
  EXPECT_FALSE(rsmall.sharded);
  EXPECT_FALSE(rsmall.report.sharded);
  EXPECT_EQ(svc.stats().sharded_jobs, 1u);

  // Routing is a latency decision, never a numerics one: the sharded
  // job's factors and solve match a plain single-device run bit for bit.
  ThreadPool serial(1);
  Options ref = equiv_options(serial);
  ref.device = sopt.pipeline.device;
  const FactorResult want = SparseLU(ref).factorize(big);
  EXPECT_EQ(factors_mismatch(rbig.factors, want), std::nullopt);
  ASSERT_TRUE(rbig.x.has_value());
  EXPECT_TRUE(values_identical(*rbig.x, SparseLU::solve(want, b)));
}

// ---------------------------------------------------------------------------
// Per-device state audit: every Device::launch-site arena that numeric
// execution keeps must be per-device/per-instance. Two pipelines on two
// simulated devices run concurrently; if any arena were shared global
// state, the runs would race (TSan) and corrupt each other's factors.

void run_concurrent_pipelines(const Options& base, const Csr& a1,
                              const Csr& a2) {
  ThreadPool golden_pool(1);
  Options gopt = base;
  gopt.pool = &golden_pool;
  const FactorResult want1 = SparseLU(gopt).factorize(a1);
  const FactorResult want2 = SparseLU(gopt).factorize(a2);

  std::atomic<int> ready{0};
  FactorResult got1, got2;
  std::string err1, err2;
  auto worker = [&](const Csr& a, FactorResult& out, std::string& err) {
    try {
      ThreadPool pool(1);
      Options opt = base;
      opt.pool = &pool;
      SparseLU lu(opt);
      ready.fetch_add(1);
      while (ready.load() < 2) std::this_thread::yield();
      out = lu.factorize(a);
    } catch (const std::exception& e) {
      err = e.what();
    }
  };
  std::thread t1(worker, std::cref(a1), std::ref(got1), std::ref(err1));
  std::thread t2(worker, std::cref(a2), std::ref(got2), std::ref(err2));
  t1.join();
  t2.join();
  ASSERT_EQ(err1, "");
  ASSERT_EQ(err2, "");
  EXPECT_EQ(factors_mismatch(got1, want1), std::nullopt);
  EXPECT_EQ(factors_mismatch(got2, want2), std::nullopt);
}

TEST(Sharding, FusionReadyFlagArenasArePerDevice) {
  ThreadPool serial(1);
  Options base = equiv_options(serial);
  base.pool = nullptr;
  base.numeric.fusion.enabled = true;  // narrow levels fuse; flags in play
  run_concurrent_pipelines(base, gen_blocked_planar(1200, 24, 3.5, 6, 31),
                           gen_circuit(1000, 4.0, 2, 16, 32));
}

TEST(Sharding, FactorWindowArenasArePerDevice) {
  ThreadPool serial(1);
  Options base = equiv_options(serial);
  base.pool = nullptr;
  base.numeric.window.enabled = true;  // scrolling arena in play
  base.numeric.window.budget_bytes = 1u << 20;
  run_concurrent_pipelines(base, gen_blocked_planar(1200, 24, 3.5, 6, 33),
                           gen_blocked_planar(900, 30, 4.0, 5, 34));
}

TEST(Sharding, RefactorizerDeviceBuffersArePerInstance) {
  ThreadPool serial(1);
  const Options base = equiv_options(serial);
  const Csr a1 = gen_blocked_planar(800, 20, 3.5, 5, 41);
  const Csr a2 = gen_circuit(700, 4.0, 2, 16, 42);

  refactor::Refactorizer r1(a1, base);
  const std::size_t f1 = r1.device_footprint_bytes();
  ASSERT_GT(f1, 0u);
  EXPECT_EQ(f1, r1.device().allocated_bytes());
  {
    // A second cache on its own device neither grows nor frees the
    // first's buffers — no shared device-buffer singletons.
    refactor::Refactorizer r2(a2, base);
    EXPECT_GT(r2.device_footprint_bytes(), 0u);
    EXPECT_EQ(r1.device_footprint_bytes(), f1);
  }
  EXPECT_EQ(r1.device_footprint_bytes(), f1);
  const refactor::RefactorReport rep = r1.refactorize(a1);
  EXPECT_FALSE(rep.fell_back);
}

}  // namespace
}  // namespace e2elu
