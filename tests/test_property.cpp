// Seeded randomized property tests over the full pipeline.
//
// Each case derives a generator class, size, and parameters from one seed,
// runs preprocess -> symbolic -> levelize -> numeric -> solve, and checks
// three properties against independent oracles:
//   1. the pipeline's filled pattern equals symbolic/reference.cpp's
//      sequential fill2 (run with identity permutations so the patterns
//      are directly comparable),
//   2. a dense LU residual bound: ||L*U - A||_F <= tol * ||A||_F
//      (checked densely for small cases),
//   3. the end-to-end relative solve residual is small (the inputs are
//      diagonally dominant, so LU without pivoting is well-conditioned).
// A failing case shrinks by halving n with the same seed until the
// failure disappears, then prints the smallest failing (seed, n) pair so
// the case replays from the log line alone.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "core/sparse_lu.hpp"
#include "matrix/generators.hpp"
#include "support/rng.hpp"
#include "symbolic/symbolic.hpp"

namespace e2elu {
namespace {

struct CaseSpec {
  std::string kind;
  Csr a;
};

/// Derives the whole case from (seed, n) so a shrunk replay needs only
/// those two numbers.
CaseSpec make_case(std::uint64_t seed, index_t n) {
  Rng rng(seed);
  CaseSpec spec;
  switch (rng.next_below(4)) {
    case 0: {
      const auto side = static_cast<index_t>(
          std::max(2.0, std::floor(std::sqrt(static_cast<double>(n)))));
      spec.kind = "grid2d";
      spec.a = gen_grid2d(side, side);
      break;
    }
    case 1: {
      const index_t bw =
          static_cast<index_t>(2 + rng.next_below(std::max<index_t>(2, n / 8)));
      spec.kind = "banded";
      spec.a = gen_banded(n, bw, 3.0 + rng.next_double() * 4.0, rng.next_u64());
      break;
    }
    case 2:
      spec.kind = "circuit";
      spec.a = gen_circuit(n, 3.0 + rng.next_double() * 3.0,
                           1 + static_cast<index_t>(rng.next_below(4)),
                           4 + static_cast<index_t>(rng.next_below(24)),
                           rng.next_u64());
      break;
    default:
      spec.kind = "near_planar";
      spec.a = gen_near_planar(n, 2.0 + rng.next_double() * 2.0,
                               4 + static_cast<index_t>(rng.next_below(12)),
                               rng.next_u64());
      break;
  }
  return spec;
}

Options property_options(std::uint64_t seed) {
  Options opt;
  opt.device = gpusim::DeviceSpec::v100_with_memory(16u << 20);
  // Identity permutations: the filled pattern is then comparable 1:1 with
  // the sequential reference run on the same matrix.
  opt.ordering = Ordering::None;
  opt.match_diagonal = false;
  // Alternate the symbolic drivers and numeric formats across seeds so
  // the properties cover all of them, not just the defaults.
  switch (seed % 3) {
    case 0: opt.mode = Mode::OutOfCoreGpu; break;
    case 1: opt.mode = Mode::OutOfCoreGpuDynamic; break;
    default: opt.mode = Mode::UnifiedMemoryGpu; break;
  }
  opt.numeric_format = (seed % 2 == 0) ? NumericFormat::SparseBinarySearch
                                       : NumericFormat::DenseWindow;
  return opt;
}

/// Dense ||L*U - A||_F / ||A||_F for small cases.
double dense_lu_residual(const Csr& l, const Csr& u, const Csr& a) {
  const std::size_t n = static_cast<std::size_t>(a.n);
  std::vector<double> lu(n * n, 0.0), da(n * n, 0.0);
  for (index_t i = 0; i < a.n; ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      da[n * i + cols[k]] = vals[k];
    }
  }
  for (index_t i = 0; i < a.n; ++i) {
    for (offset_t lp = l.row_ptr[i]; lp < l.row_ptr[i + 1]; ++lp) {
      const index_t k = l.col_idx[lp];
      const double lik = l.values[lp];
      for (offset_t up = u.row_ptr[k]; up < u.row_ptr[k + 1]; ++up) {
        lu[n * i + u.col_idx[up]] += lik * u.values[up];
      }
    }
  }
  double err2 = 0, ref2 = 0;
  for (std::size_t p = 0; p < n * n; ++p) {
    err2 += (lu[p] - da[p]) * (lu[p] - da[p]);
    ref2 += da[p] * da[p];
  }
  return ref2 == 0 ? std::sqrt(err2) : std::sqrt(err2 / ref2);
}

/// Runs every property for one (seed, n); returns a failure description
/// or nullopt.
std::optional<std::string> check_case(std::uint64_t seed, index_t n) {
  const CaseSpec spec = make_case(seed, n);
  const Options opt = property_options(seed);

  FactorizationArtifacts artifacts;
  FactorResult res;
  try {
    res = SparseLU(opt).factorize(spec.a, artifacts);
  } catch (const std::exception& e) {
    return "factorize threw: " + std::string(e.what());
  }

  // Property 1: fill oracle.
  const symbolic::SymbolicResult oracle = symbolic::symbolic_reference(spec.a);
  if (artifacts.filled.row_ptr != oracle.filled.row_ptr ||
      artifacts.filled.col_idx != oracle.filled.col_idx) {
    return "filled pattern diverges from the sequential reference";
  }

  // Property 2: dense LU residual bound (small cases only: O(n^2) memory).
  if (spec.a.n <= 150) {
    const double lu_res = dense_lu_residual(res.l, res.u, spec.a);
    if (!(lu_res <= 1e-9)) {
      return "||LU - A||_F / ||A||_F = " + std::to_string(lu_res);
    }
  }

  // Property 3: end-to-end solve residual.
  Rng rng(seed ^ 0x5eed);
  std::vector<value_t> b(static_cast<std::size_t>(spec.a.n));
  for (auto& v : b) v = static_cast<value_t>(rng.next_double(-1.0, 1.0));
  const std::vector<value_t> x = SparseLU::solve(res, b);
  const double residual = SparseLU::residual(spec.a, x, b);
  if (!(residual <= 1e-8)) {
    return "solve residual " + std::to_string(residual);
  }
  return std::nullopt;
}

TEST(PropertyPipeline, RandomMatricesSatisfyTheOracles) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const index_t n0 = 60 + static_cast<index_t>((seed * 47) % 300);
    std::optional<std::string> failure = check_case(seed, n0);
    if (!failure.has_value()) continue;

    // Shrink: halve n while the failure reproduces, so the report names
    // the smallest failing case.
    index_t n = n0;
    std::string detail = *failure;
    while (n / 2 >= 16) {
      const std::optional<std::string> smaller = check_case(seed, n / 2);
      if (!smaller.has_value()) break;
      n /= 2;
      detail = *smaller;
    }
    const CaseSpec spec = make_case(seed, n);
    ADD_FAILURE() << "property failed: " << detail
                  << "\n  replay: seed=" << seed << " n=" << n << " kind="
                  << spec.kind << " (make_case(" << seed << ", " << n << "))";
  }
}

}  // namespace
}  // namespace e2elu
