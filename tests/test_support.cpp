// Support layer: thread pool, prefix sums, RNG, error macros, timer.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "support/check.hpp"
#include "support/prefix_sum.hpp"
#include "support/types.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace e2elu {
namespace {

TEST(ThreadPool, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10'000);
  pool.parallel_for(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RangesArePartition) {
  ThreadPool pool(3);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_for_ranges(5123, [&](std::size_t b, std::size_t e,
                                     std::size_t worker) {
    EXPECT_LT(worker, pool.num_threads());
    std::lock_guard<std::mutex> lock(m);
    ranges.emplace_back(b, e);
  });
  std::sort(ranges.begin(), ranges.end());
  std::size_t expect = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_EQ(b, expect);
    EXPECT_LT(b, e);
    expect = e;
  }
  EXPECT_EQ(expect, 5123u);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int sum = 0;
  pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 4950);
}

TEST(PrefixSum, SequentialMatchesDefinition) {
  std::vector<offset_t> in{3, 0, 5, 1, 2};
  std::vector<offset_t> out;
  EXPECT_EQ(exclusive_scan(in, out), 11);
  EXPECT_EQ(out, (std::vector<offset_t>{0, 3, 3, 8, 9}));
}

TEST(PrefixSum, InPlaceAliasing) {
  std::vector<offset_t> data{1, 2, 3};
  EXPECT_EQ(exclusive_scan(data, data), 6);
  EXPECT_EQ(data, (std::vector<offset_t>{0, 1, 3}));
}

TEST(PrefixSum, ParallelMatchesSequential) {
  Rng rng(5);
  for (std::size_t n : {0u, 1u, 7u, 1000u, 65536u}) {
    std::vector<offset_t> data(n);
    for (auto& v : data) v = static_cast<offset_t>(rng.next_below(100));
    std::vector<offset_t> expected;
    const offset_t total = exclusive_scan(data, expected);
    const offset_t ptotal = parallel_exclusive_scan(data);
    EXPECT_EQ(total, ptotal);
    EXPECT_EQ(data, expected);
  }
}

TEST(PrefixSum, ParallelEdgeCasesOnExplicitPool) {
  // n == 0 and n == 1 through the pool-taking entry point, plus inputs
  // shorter than the worker count: the scan must never launch more
  // ranges than elements.
  ThreadPool pool(4);
  for (std::size_t n : {0u, 1u, 2u, 3u}) {
    std::vector<offset_t> data(n, 5);
    std::vector<offset_t> expected;
    const offset_t total = exclusive_scan(data, expected);
    EXPECT_EQ(parallel_exclusive_scan(data, pool), total);
    EXPECT_EQ(data, expected);
  }
}

TEST(PrefixSum, ParallelOnSingleThreadPoolFallsBackSequential) {
  ThreadPool single(1);
  ASSERT_EQ(single.num_threads(), 1u);
  std::vector<offset_t> data{4, 0, 2, 7, 1};
  EXPECT_EQ(parallel_exclusive_scan(data, single), 14);
  EXPECT_EQ(data, (std::vector<offset_t>{0, 4, 4, 6, 13}));

  std::vector<offset_t> empty;
  EXPECT_EQ(parallel_exclusive_scan(empty, single), 0);
  EXPECT_TRUE(empty.empty());
}

TEST(PrefixSum, GlobalPoolEntryPointHandlesTinyInputs) {
  for (std::size_t n : {0u, 1u}) {
    std::vector<offset_t> data(n, 9);
    EXPECT_EQ(parallel_exclusive_scan(data),
              static_cast<offset_t>(n == 0 ? 0 : 9));
    if (n == 1) {
      EXPECT_EQ(data[0], 0);
    }
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const double d = rng.next_double(-2.0, 3.0);
    EXPECT_GE(d, -2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(Rng, RoughlyUniform) {
  Rng rng(9);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 100'000; ++i) ++buckets[rng.next_below(10)];
  for (int b : buckets) {
    EXPECT_GT(b, 9'000);
    EXPECT_LT(b, 11'000);
  }
}

TEST(Check, ThrowsWithContext) {
  try {
    E2ELU_CHECK_MSG(1 == 2, "the answer is " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("the answer is 42"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Timer, MeasuresForwardTime) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  const double before = t.millis();
  t.reset();
  EXPECT_LE(t.millis(), before + 1000.0);
}

}  // namespace
}  // namespace e2elu
