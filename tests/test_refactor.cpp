// Refactorization engine (refactor/refactor.hpp): pattern-reuse numeric
// re-factorization must produce the same factors as a fresh end-to-end
// run, reject pattern changes, fall back on stability violations, and
// keep bound solvers valid across calls.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/sparse_lu.hpp"
#include "matrix/generators.hpp"
#include "refactor/refactor.hpp"
#include "solve/pipeline_solver.hpp"
#include "support/rng.hpp"

namespace e2elu {
namespace {

std::vector<value_t> rhs(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = static_cast<value_t>(rng.next_double(-1.0, 1.0));
  return b;
}

Csr test_matrix() { return gen_circuit(600, 5.0, 3, 24, 0xbeef); }

// Pattern-only preprocessing so the cached permutations and a fresh
// factorization of a same-pattern matrix are identical — the setting in
// which factor values can be compared position by position.
Options pattern_only_options() {
  Options opt;
  opt.device = gpusim::DeviceSpec::v100_with_memory(64u << 20);
  opt.match_diagonal = false;
  return opt;
}

void expect_values_close(const std::vector<value_t>& a,
                         const std::vector<value_t>& b,
                         double rel_tol = 1e-9) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double scale = std::max({std::abs(a[k]), std::abs(b[k]), 1.0});
    ASSERT_NEAR(a[k], b[k], rel_tol * scale) << "position " << k;
  }
}

TEST(Refactorizer, MatchesFromScratchFactorization) {
  const Csr a = test_matrix();
  const Options opt = pattern_only_options();
  refactor::Refactorizer refac(a, opt);

  for (std::uint64_t step = 1; step <= 3; ++step) {
    const Csr a_t = gen_value_drift(a, 0.1, step);
    const refactor::RefactorReport rep = refac.refactorize(a_t);
    EXPECT_TRUE(rep.reused);
    EXPECT_FALSE(rep.fell_back);
    EXPECT_GT(rep.pivot_growth, 0.0);
    EXPECT_GT(rep.min_pivot, 0.0);

    const FactorResult fresh = SparseLU(opt).factorize(a_t);
    ASSERT_EQ(refac.factors().row_perm, fresh.row_perm);
    ASSERT_EQ(refac.factors().col_perm, fresh.col_perm);
    expect_values_close(refac.factors().l.values, fresh.l.values);
    expect_values_close(refac.factors().u.values, fresh.u.values);
  }
  EXPECT_EQ(refac.stats().calls, 3u);
  EXPECT_EQ(refac.stats().reused, 3u);
  EXPECT_EQ(refac.stats().stability_fallbacks, 0u);
  EXPECT_EQ(refac.stats().pattern_rebuilds, 0u);
}

TEST(Refactorizer, ReusePathIsCheaperThanFullPipeline) {
  const Csr a = test_matrix();
  refactor::Refactorizer refac(a, pattern_only_options());
  const double full_sim = refac.factors().total_sim_us();

  const refactor::RefactorReport rep =
      refac.refactorize(gen_value_drift(a, 0.05, 1));
  ASSERT_TRUE(rep.reused);
  // The reuse path skips preprocessing, symbolic, and levelization — it
  // must be well under the full pipeline even before the <50% bench bar.
  EXPECT_LT(rep.total_sim_us(), full_sim);
}

TEST(Refactorizer, SecondCallUploadsOnlyValues) {
  const Csr a = test_matrix();
  refactor::Refactorizer refac(a, pattern_only_options());
  const refactor::RefactorReport rep =
      refac.refactorize(gen_value_drift(a, 0.05, 1));
  ASSERT_TRUE(rep.reused);
  // Structure buffers are device-resident; a refactorize ships exactly the
  // CSC values array and nothing else.
  EXPECT_EQ(rep.device.h2d_bytes,
            refac.factors().l.values.size() * sizeof(value_t) +
                refac.factors().u.values.size() * sizeof(value_t) -
                static_cast<std::size_t>(a.n) * sizeof(value_t));
}

TEST(Refactorizer, RejectsPatternMismatchByDefault) {
  const Csr a = test_matrix();
  refactor::Refactorizer refac(a, pattern_only_options());

  // Same order, different connectivity.
  const Csr other = gen_circuit(600, 5.0, 3, 24, 0xfeed);
  ASSERT_FALSE(same_pattern(a, other));
  EXPECT_THROW(refac.refactorize(other), Error);
  // A wrong-order matrix is a mismatch too, not an out-of-bounds access.
  EXPECT_THROW(refac.refactorize(gen_circuit(500, 5.0, 3, 24, 0xbeef)),
               Error);
  // The cache survives a rejected call: a matching matrix still reuses.
  EXPECT_TRUE(refac.refactorize(gen_value_drift(a, 0.05, 1)).reused);
}

TEST(Refactorizer, MismatchPolicyRefactorizeRefreshesCache) {
  const Csr a = test_matrix();
  refactor::RefactorOptions ropt;
  ropt.on_mismatch = refactor::MismatchPolicy::Refactorize;
  refactor::Refactorizer refac(a, pattern_only_options(), ropt);

  const Csr other = gen_circuit(600, 5.0, 3, 24, 0xfeed);
  const refactor::RefactorReport rep = refac.refactorize(other);
  EXPECT_TRUE(rep.fell_back);
  EXPECT_STREQ(rep.fallback_reason, "pattern mismatch");
  EXPECT_GT(rep.fallback_sim_us, 0.0);
  EXPECT_EQ(refac.stats().pattern_rebuilds, 1u);

  // The cache now belongs to `other`: drifts of it reuse, drifts of the
  // original are the mismatch.
  EXPECT_TRUE(refac.refactorize(gen_value_drift(other, 0.05, 1)).reused);
  EXPECT_TRUE(refac.refactorize(gen_value_drift(a, 0.05, 1)).fell_back);

  const std::vector<value_t> b = rhs(a.n, 7);
  EXPECT_LT(SparseLU::residual(gen_value_drift(a, 0.05, 1),
                               SparseLU::solve(refac.factors(), b), b),
            1e-8);
}

TEST(Refactorizer, StabilityMonitorTriggersFallback) {
  const Csr a = test_matrix();
  // A threshold no real elimination can satisfy: element growth is always
  // > 1e-30, so every reuse attempt trips the monitor deterministically.
  refactor::RefactorOptions ropt;
  ropt.max_pivot_growth = 1e-30;
  refactor::Refactorizer refac(a, pattern_only_options(), ropt);

  const Csr a_t = gen_value_drift(a, 0.1, 1);
  const refactor::RefactorReport rep = refac.refactorize(a_t);
  EXPECT_FALSE(rep.reused);
  EXPECT_TRUE(rep.fell_back);
  EXPECT_STREQ(rep.fallback_reason, "stability monitor");
  EXPECT_EQ(refac.stats().stability_fallbacks, 1u);

  // The fallback is a fresh end-to-end factorization of a_t: the factors
  // must be correct, not the abandoned reuse attempt.
  const std::vector<value_t> b = rhs(a.n, 11);
  EXPECT_LT(SparseLU::residual(a_t, SparseLU::solve(refac.factors(), b), b),
            1e-8);

  const FactorResult fresh = SparseLU(pattern_only_options()).factorize(a_t);
  expect_values_close(refac.factors().u.values, fresh.u.values);
}

TEST(Refactorizer, DisabledAutoFallbackThrowsOnInstability) {
  const Csr a = test_matrix();
  refactor::RefactorOptions ropt;
  ropt.max_pivot_growth = 1e-30;
  ropt.auto_fallback = false;
  refactor::Refactorizer refac(a, pattern_only_options(), ropt);
  EXPECT_THROW(refac.refactorize(gen_value_drift(a, 0.1, 1)), Error);
}

TEST(Refactorizer, PipelineSolverRebindSolvesUpdatedSystem) {
  const Csr a = test_matrix();
  const Options opt = pattern_only_options();
  refactor::Refactorizer refac(a, opt);

  gpusim::Device solver_device(opt.device);
  solve::PipelineSolver solver(solver_device, refac.factors());
  const std::vector<value_t> b = rhs(a.n, 13);
  ASSERT_LT(SparseLU::residual(a, solver.solve(b), b), 1e-8);

  for (std::uint64_t step = 1; step <= 3; ++step) {
    const Csr a_t = gen_value_drift(a, 0.15, step);
    ASSERT_TRUE(refac.refactorize(a_t).reused);
    solver.rebind(refac.factors());
    const std::vector<value_t> x = solver.solve(b);
    const double res = SparseLU::residual(a_t, x, b);
    EXPECT_LT(res, 1e-8) << "step " << step;

    // Same accuracy class as solving against a from-scratch factorization.
    const FactorResult fresh = SparseLU(opt).factorize(a_t);
    const double res_fresh =
        SparseLU::residual(a_t, SparseLU::solve(fresh, b), b);
    EXPECT_LT(res, std::max(10.0 * res_fresh, 1e-12)) << "step " << step;
  }
}

TEST(Refactorizer, SparseFormatMatricesRefactorizeToo) {
  // Exercise the sparse-binary-search numeric path through the engine:
  // format decisions are cached, so a matrix the pipeline factorizes with
  // the sparse format must re-run with it as well.
  const Csr a = gen_blocked_planar(4000, 100, 3.2, 4, 31);
  Options opt;
  opt.ordering = Ordering::None;
  opt.match_diagonal = false;
  opt.device = gpusim::DeviceSpec::v100_with_memory(
      static_cast<std::size_t>(120) * 4000 * sizeof(value_t));
  refactor::Refactorizer refac(a, opt);
  ASSERT_TRUE(refac.factors().used_sparse_numeric);

  const Csr a_t = gen_value_drift(a, 0.1, 2);
  ASSERT_TRUE(refac.refactorize(a_t).reused);
  const FactorResult fresh = SparseLU(opt).factorize(a_t);
  expect_values_close(refac.factors().u.values, fresh.u.values);
}

}  // namespace
}  // namespace e2elu
