// Pre-processing: permutations, diagonal matching, orderings, scaling,
// diagonal patching.

#include <gtest/gtest.h>

#include <numeric>

#include "core/factor_error.hpp"
#include "matrix/convert.hpp"
#include "matrix/generators.hpp"
#include "preprocess/preprocess.hpp"
#include "support/rng.hpp"
#include "symbolic/symbolic.hpp"

namespace e2elu {
namespace {

Permutation random_perm(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Permutation p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  for (index_t i = n - 1; i > 0; --i) {
    std::swap(p[i], p[rng.next_below(static_cast<std::uint64_t>(i) + 1)]);
  }
  return p;
}

TEST(Permutation, InverseComposesToIdentity) {
  const Permutation p = random_perm(100, 1);
  EXPECT_TRUE(is_permutation(p));
  const Permutation inv = invert_permutation(p);
  for (index_t k = 0; k < 100; ++k) EXPECT_EQ(inv[p[k]], k);
}

TEST(Permutation, DetectsNonBijections) {
  EXPECT_TRUE(is_permutation({2, 0, 1}));
  EXPECT_FALSE(is_permutation({0, 0, 1}));
  EXPECT_FALSE(is_permutation({0, 3, 1}));
}

TEST(Permute, EntriesLandWhereDefined) {
  const Csr a = gen_banded(60, 8, 5.0, 2);
  const Permutation pr = random_perm(60, 3);
  const Permutation pc = random_perm(60, 4);
  const Csr b = permute(a, pr, pc);
  validate(b);
  EXPECT_EQ(b.nnz(), a.nnz());
  Rng rng(5);
  for (int t = 0; t < 300; ++t) {
    const auto i = static_cast<index_t>(rng.next_below(60));
    const auto j = static_cast<index_t>(rng.next_below(60));
    EXPECT_EQ(get_entry(b, i, j), get_entry(a, pr[i], pc[j]));
  }
}

TEST(Permute, IdentityIsNoop) {
  const Csr a = gen_circuit(80, 4.0, 2, 8, 6);
  Permutation id(80);
  std::iota(id.begin(), id.end(), 0);
  const Csr b = permute(a, id, id);
  EXPECT_TRUE(same_pattern(a, b));
  EXPECT_EQ(a.values, b.values);
}

TEST(Permute, RoundTripThroughInverseIsIdentity) {
  // permute(permute(A, p, q), p^-1, q^-1) == A, values included —
  // composition with the inverse permutations is the identity.
  const Csr a = gen_circuit(90, 4.5, 3, 9, 21);
  const Permutation p = random_perm(90, 31);
  const Permutation q = random_perm(90, 32);
  const Csr b = permute(permute(a, p, q), invert_permutation(p),
                        invert_permutation(q));
  validate(b);
  EXPECT_TRUE(same_pattern(a, b));
  EXPECT_EQ(a.values, b.values);
}

TEST(Permute, EmptyAndSingletonMatrices) {
  const Csr empty(0);
  EXPECT_EQ(permute(empty, {}, {}).n, 0);
  Coo coo;
  coo.n = 1;
  coo.add(0, 0, 7.0);
  const Csr one = coo_to_csr(coo);
  const Csr b = permute(one, {0}, {0});
  EXPECT_TRUE(same_pattern(one, b));
  EXPECT_EQ(one.values, b.values);
}

TEST(DiagonalMatching, RepairsShiftedDiagonal) {
  // Cyclic shift: entry (i, (i+1) mod n) — no structural diagonal at all.
  Coo coo;
  coo.n = 40;
  for (index_t i = 0; i < 40; ++i) {
    coo.add(i, (i + 1) % 40, 3.0);
    coo.add(i, (i + 7) % 40, 1.0);
  }
  const Csr a = coo_to_csr(coo);
  EXPECT_FALSE(has_full_diagonal(a));
  const Permutation q = diagonal_matching(a);
  EXPECT_TRUE(is_permutation(q));
  Permutation id(40);
  std::iota(id.begin(), id.end(), 0);
  EXPECT_TRUE(has_full_diagonal(permute(a, id, q)));
}

TEST(DiagonalMatching, ThrowsOnStructuralSingularity) {
  Coo coo;
  coo.n = 3;
  coo.add(0, 0, 1.0);
  coo.add(1, 0, 1.0);  // rows 1 and 2 both only hit column 0
  coo.add(2, 0, 1.0);
  EXPECT_THROW(diagonal_matching(coo_to_csr(coo)), Error);
}

TEST(DiagonalMatching, StructuredErrorNamesUnmatchedColumns) {
  // Same structurally singular matrix as above, but asserting on the
  // structured fields: clients match on kind/phase/column, not strings.
  Coo coo;
  coo.n = 3;
  coo.add(0, 0, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(2, 0, 1.0);
  try {
    diagonal_matching(coo_to_csr(coo));
    FAIL() << "expected FactorError{StructurallySingular}";
  } catch (const FactorError& e) {
    EXPECT_EQ(e.kind(), FaultKind::StructurallySingular);
    EXPECT_EQ(e.phase(), "preprocess");
    EXPECT_EQ(e.column(), 1);  // first uncoverable column
    const std::string what = e.what();
    EXPECT_NE(what.find("2 column(s) unmatched"), std::string::npos) << what;
    EXPECT_NE(what.find("1 2"), std::string::npos) << what;
  }
}

TEST(DiagonalMatching, EmptyAndSingletonMatrices) {
  EXPECT_TRUE(diagonal_matching(Csr(0)).empty());
  Coo coo;
  coo.n = 1;
  coo.add(0, 0, 2.0);
  EXPECT_EQ(diagonal_matching(coo_to_csr(coo)), Permutation{0});
}

TEST(DiagonalMatching, AlreadyDiagonalKeepsFullDiagonal) {
  const Csr a = gen_banded(60, 6, 4.0, 19);
  ASSERT_TRUE(has_full_diagonal(a));
  const Permutation q = diagonal_matching(a);
  EXPECT_TRUE(is_permutation(q));
  Permutation id(60);
  std::iota(id.begin(), id.end(), 0);
  EXPECT_TRUE(has_full_diagonal(permute(a, id, q)));
}

TEST(DiagonalMatching, HandlesFullyDenseRows) {
  // Two fully dense rows competing with a shifted sparse remainder: the
  // augmenting searches must route around the dense rows' greed.
  Coo coo;
  coo.n = 30;
  for (index_t j = 0; j < 30; ++j) {
    coo.add(0, j, 50.0 - j);
    coo.add(1, j, 50.0 - j);
  }
  for (index_t i = 2; i < 30; ++i) coo.add(i, (i + 1) % 30, 2.0);
  const Csr a = coo_to_csr(coo);
  const Permutation q = diagonal_matching(a);
  EXPECT_TRUE(is_permutation(q));
  Permutation id(30);
  std::iota(id.begin(), id.end(), 0);
  EXPECT_TRUE(has_full_diagonal(permute(a, id, q)));
}

TEST(DiagonalMatching, PrefersLargeMagnitudes) {
  // Both columns available everywhere; matching should put the big
  // entries on the diagonal.
  Coo coo;
  coo.n = 2;
  coo.add(0, 0, 10.0);
  coo.add(0, 1, 0.1);
  coo.add(1, 0, 0.1);
  coo.add(1, 1, 10.0);
  const Permutation q = diagonal_matching(coo_to_csr(coo));
  EXPECT_EQ(q[0], 0);
  EXPECT_EQ(q[1], 1);
}

namespace {
offset_t fill_after(const Csr& a, const Permutation& p) {
  return symbolic::symbolic_rowmerge(permute(a, p, p)).nnz();
}
}  // namespace

TEST(Ordering, RcmAndMinDegreeReduceFillOnShuffledGrid) {
  const Csr grid = gen_grid2d(18, 18);
  const Permutation shuffle = random_perm(grid.n, 8);
  const Csr a = permute(grid, shuffle, shuffle);

  Permutation id(a.n);
  std::iota(id.begin(), id.end(), 0);
  const offset_t fill_none = fill_after(a, id);
  const offset_t fill_rcm = fill_after(a, rcm_ordering(a));
  const offset_t fill_md = fill_after(a, min_degree_ordering(a));
  EXPECT_LT(fill_rcm, fill_none);
  EXPECT_LT(fill_md, fill_none);
}

TEST(Ordering, ProducesValidPermutationsOnDisconnectedGraphs) {
  const Csr a = gen_blocked_planar(300, 30, 3.2, 4, 10);
  EXPECT_TRUE(is_permutation(rcm_ordering(a)));
  EXPECT_TRUE(is_permutation(min_degree_ordering(a)));
}

TEST(Ordering, EmptyAndSingletonMatrices) {
  EXPECT_TRUE(rcm_ordering(Csr(0)).empty());
  EXPECT_TRUE(min_degree_ordering(Csr(0)).empty());
  Coo coo;
  coo.n = 1;
  coo.add(0, 0, 1.0);
  const Csr one = coo_to_csr(coo);
  EXPECT_EQ(rcm_ordering(one), Permutation{0});
  EXPECT_EQ(min_degree_ordering(one), Permutation{0});
}

/// Dense-ish random pattern: elimination-graph min-degree densifies
/// quadratically on it. Regression fixture for the densification guard.
Csr denseish_random(index_t n, int extra_per_row, std::uint64_t seed) {
  Rng rng(seed);
  Coo coo;
  coo.n = n;
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 4.0);
    for (int k = 0; k < extra_per_row; ++k) {
      const auto j = static_cast<index_t>(rng.next_below(n));
      if (j != i) coo.add(i, j, 1.0);
    }
  }
  return coo_to_csr(coo);
}

TEST(Ordering, DensifyGuardBoundsEliminationBlowup) {
  const Csr a = denseish_random(160, 6, 4242);

  // Without the guard (cap effectively infinite) the live elimination
  // graph densifies to a large fraction of n^2 — the failing-before
  // behavior this guard exists to stop.
  PreprocessOptions unguarded;
  unguarded.densify_cap = 1e9;
  MinDegreeStats before;
  ASSERT_TRUE(is_permutation(min_degree_ordering(a, unguarded, &before)));
  EXPECT_EQ(before.rcm_fallback_at, -1);

  PreprocessOptions guarded;
  guarded.densify_cap = 1.5;  // trips partway through this fixture
  MinDegreeStats after;
  const Permutation p = min_degree_ordering(a, guarded, &after);
  EXPECT_TRUE(is_permutation(p));
  EXPECT_GE(after.rcm_fallback_at, 0);
  EXPECT_LT(after.rcm_fallback_at, a.n);
  // The guard caps the peak near densify_cap * nnz(A+At); unguarded it
  // blows past that.
  EXPECT_LT(after.peak_adjacency, before.peak_adjacency / 2);
}

TEST(Equilibrate, BoundsMagnitudesByOne) {
  Csr a = gen_banded(100, 8, 5.0, 12);
  for (auto& v : a.values) v *= 1000.0;
  const Scaling s = equilibrate(a);
  for (value_t v : a.values) EXPECT_LE(std::abs(v), 1.0 + 1e-12);
  EXPECT_EQ(s.row_scale.size(), 100u);
  // Every row still has a non-zero max (no degenerate scaling).
  for (index_t i = 0; i < a.n; ++i) {
    value_t mx = 0;
    for (value_t v : a.row_vals(i)) mx = std::max(mx, std::abs(v));
    EXPECT_GT(mx, 0.0);
  }
}

TEST(PatchZeroDiagonal, FixesValuesInPlace) {
  Csr a = gen_banded(50, 5, 4.0, 13);
  a.values[a.row_ptr[10]] = 0;  // may or may not be the diagonal
  for (offset_t k = a.row_ptr[20]; k < a.row_ptr[21]; ++k) {
    if (a.col_idx[k] == 20) a.values[k] = 0;
  }
  const index_t patched = patch_zero_diagonal(a, 1000.0);
  EXPECT_GE(patched, 1);
  EXPECT_DOUBLE_EQ(get_entry(a, 20, 20), 1000.0);
}

TEST(PatchZeroDiagonal, InsertsMissingStructuralDiagonal) {
  Coo coo;
  coo.n = 4;
  coo.add(0, 0, 1.0);
  coo.add(1, 2, 1.0);  // row 1 has no diagonal
  coo.add(2, 2, 1.0);
  coo.add(3, 0, 1.0);  // row 3 has no diagonal
  Csr a = coo_to_csr(coo);
  const index_t patched = patch_zero_diagonal(a, 1000.0);
  validate(a);
  EXPECT_EQ(patched, 2);
  EXPECT_TRUE(has_full_diagonal(a));
  EXPECT_DOUBLE_EQ(get_entry(a, 1, 1), 1000.0);
  EXPECT_DOUBLE_EQ(get_entry(a, 3, 3), 1000.0);
  EXPECT_DOUBLE_EQ(get_entry(a, 2, 2), 1.0);  // untouched
}

}  // namespace
}  // namespace e2elu
