// FactorService (service/factor_service.hpp) and its parts: the
// structure-hash pattern cache must route warm submissions through
// bit-identical replays, bound simulated device memory by LRU eviction,
// recover cold builds from injected allocation failures by shedding
// cached plans, and confine an injected fault to the submitting tenant's
// future while the service keeps serving everyone else. The shared
// BoundedQueue gets its own coverage: priority order, backpressure,
// close semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "core/sparse_lu.hpp"
#include "fault/fault.hpp"
#include "matrix/generators.hpp"
#include "refactor/refactor.hpp"
#include "service/factor_service.hpp"
#include "service/pattern_cache.hpp"
#include "service/structure_hash.hpp"
#include "support/bounded_queue.hpp"
#include "support/rng.hpp"

namespace e2elu {
namespace {

using service::FactorService;
using service::FactorServiceOptions;
using service::JobResult;
using service::PatternCache;
using service::PatternCacheOptions;

Csr service_matrix(std::uint64_t seed = 0xbeef) {
  return gen_circuit(400, 5.0, 3, 16, seed);
}

std::vector<value_t> rhs_for(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = static_cast<value_t>(rng.next_double(-1.0, 1.0));
  return b;
}

// Pattern-only preprocessing (no value-dependent matching) so a cached
// plan and a fresh factorization agree position by position; single
// worker + deterministic pools make the agreement bitwise.
FactorServiceOptions deterministic_options() {
  FactorServiceOptions opt;
  opt.workers = 1;
  opt.deterministic = true;
  opt.pipeline.device = gpusim::DeviceSpec::v100_with_memory(64u << 20);
  opt.pipeline.match_diagonal = false;
  return opt;
}

void expect_bit_identical(const std::vector<value_t>& a,
                          const std::vector<value_t>& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(value_t)));
}

// ---------------------------------------------------------------- hash --

TEST(StructureHash, SamePatternDifferentValuesHashEqual) {
  const Csr a = service_matrix();
  const Csr b = gen_value_drift(a, 0.5, 7);
  ASSERT_FALSE(a.values == b.values);
  EXPECT_EQ(service::structure_hash(a), service::structure_hash(b));
  EXPECT_TRUE(service::same_structure(a, b));
}

TEST(StructureHash, AnyPatternPerturbationChangesTheHash) {
  const Csr a = service_matrix();
  const std::uint64_t h = service::structure_hash(a);

  // Different connectivity, same order.
  const Csr other = service_matrix(0xfeed);
  ASSERT_FALSE(same_pattern(a, other));
  EXPECT_NE(h, service::structure_hash(other));

  // One column index nudged within a row.
  Csr nudged = a;
  for (index_t row = 0; row < nudged.n; ++row) {
    const offset_t begin = nudged.row_ptr[static_cast<std::size_t>(row)];
    const offset_t end = nudged.row_ptr[static_cast<std::size_t>(row) + 1];
    if (end - begin < 2) continue;
    auto& c = nudged.col_idx[static_cast<std::size_t>(begin)];
    auto& next = nudged.col_idx[static_cast<std::size_t>(begin) + 1];
    if (next - c >= 2) {
      ++c;
      EXPECT_NE(h, service::structure_hash(nudged));
      break;
    }
  }

  // An entry moved across rows: same nnz, different row extents.
  Csr rebalanced = a;
  for (std::size_t row = 1; row + 1 < rebalanced.row_ptr.size(); ++row) {
    if (rebalanced.row_ptr[row] > rebalanced.row_ptr[row - 1] &&
        rebalanced.row_ptr[row] < rebalanced.row_ptr[row + 1]) {
      --rebalanced.row_ptr[row];
      EXPECT_NE(h, service::structure_hash(rebalanced));
      break;
    }
  }

  // A dimension change alone.
  Csr larger = a;
  larger.n += 1;
  larger.row_ptr.push_back(larger.row_ptr.back());
  EXPECT_NE(h, service::structure_hash(larger));
}

TEST(PatternCache, ForcedCollisionFallsBackToFullComparison) {
  PatternCacheOptions copt;
  copt.hash_fn = [](const Csr&) { return 42ull; };  // everything collides
  PatternCache cache(copt);

  const Csr a = service_matrix(0xbeef);
  const Csr b = service_matrix(0xfeed);
  ASSERT_FALSE(same_pattern(a, b));

  Options popt;
  popt.device = gpusim::DeviceSpec::v100_with_memory(64u << 20);
  popt.match_diagonal = false;
  cache.insert(a, std::make_unique<refactor::Refactorizer>(a, popt));

  // b routes to the same bucket but must not reuse a's plan.
  EXPECT_EQ(nullptr, cache.lookup(b));
  EXPECT_GE(cache.stats().collisions, 1u);

  cache.insert(b, std::make_unique<refactor::Refactorizer>(b, popt));
  ASSERT_EQ(2u, cache.stats().entries);

  // Both now live in one hash chain; each lookup confirms against the
  // stored pattern and resolves to its own plan.
  const PatternCache::EntryPtr hit_a = cache.lookup(a);
  const PatternCache::EntryPtr hit_b = cache.lookup(b);
  ASSERT_NE(nullptr, hit_a);
  ASSERT_NE(nullptr, hit_b);
  EXPECT_NE(hit_a, hit_b);
  EXPECT_TRUE(service::same_structure(hit_a->pattern, a));
  EXPECT_TRUE(service::same_structure(hit_b->pattern, b));
}

// ------------------------------------------------------------ footprint --

TEST(Refactorizer, DeviceFootprintMatchesDeviceAllocatorExactly) {
  const Csr a = service_matrix();
  Options popt;
  popt.device = gpusim::DeviceSpec::v100_with_memory(64u << 20);
  popt.match_diagonal = false;
  refactor::Refactorizer refac(a, popt);
  // Idle between calls, every device-resident byte belongs to the cached
  // skeleton + replay plan; the footprint signal must equal what the
  // simulated allocator actually holds, not an estimate.
  EXPECT_EQ(refac.device_footprint_bytes(), refac.device().allocated_bytes());
  EXPECT_GT(refac.device_footprint_bytes(), 0u);

  refac.refactorize(gen_value_drift(a, 0.1, 1));
  EXPECT_EQ(refac.device_footprint_bytes(), refac.device().allocated_bytes());
}

// ----------------------------------------------------------- warm path --

TEST(FactorService, WarmSubmissionsReplayBitIdenticalToCacheDisabled) {
  const Csr a = service_matrix();
  const Csr a2 = gen_value_drift(a, 0.1, 1);
  const Csr a3 = gen_value_drift(a, 0.1, 2);
  const std::vector<value_t> b = rhs_for(a.n, 0x5eed);

  FactorServiceOptions cold_opt = deterministic_options();
  cold_opt.cache_enabled = false;
  JobResult cold2, cold3;
  {
    FactorService baseline(cold_opt);
    baseline.submit(a, std::nullopt, "t", 0).get();
    cold2 = baseline.submit(a2, b, "t", 0).get();
    cold3 = baseline.submit(a3, std::nullopt, "t", 0).get();
    EXPECT_FALSE(cold2.cache_hit);
  }

  FactorService warm(deterministic_options());
  const JobResult first = warm.submit(a, std::nullopt, "t", 0).get();
  EXPECT_FALSE(first.cache_hit);
  const JobResult hit2 = warm.submit(a2, b, "t", 0).get();
  const JobResult hit3 = warm.submit(a3, std::nullopt, "t", 0).get();

  ASSERT_TRUE(hit2.cache_hit);
  ASSERT_TRUE(hit2.replayed);
  ASSERT_TRUE(hit3.cache_hit);
  EXPECT_FALSE(hit2.demoted);

  // The factors a warm replay produces are the factors a cache-disabled
  // full pipeline produces — bit for bit, including the solve.
  expect_bit_identical(hit2.factors.l.values, cold2.factors.l.values);
  expect_bit_identical(hit2.factors.u.values, cold2.factors.u.values);
  expect_bit_identical(hit3.factors.l.values, cold3.factors.l.values);
  expect_bit_identical(hit3.factors.u.values, cold3.factors.u.values);
  ASSERT_TRUE(hit2.x.has_value());
  ASSERT_TRUE(cold2.x.has_value());
  expect_bit_identical(*hit2.x, *cold2.x);

  // Replay launch counts are visible per job and show the warm path
  // skipped the discovery phases.
  EXPECT_LT(hit2.launches, cold2.launches);
  EXPECT_LT(hit2.sim_us, cold2.sim_us);

  const auto stats = warm.stats();
  EXPECT_EQ(2u, stats.cache_hits);
  EXPECT_EQ(1u, stats.cache_misses);
  EXPECT_EQ(2u, stats.replays);
  EXPECT_EQ(2u, warm.tenant_stats("t").replays);
}

// ----------------------------------------------------------- admission --

TEST(FactorService, QuotaRejectsTheTenantOverLimitOnly) {
  FactorServiceOptions opt = deterministic_options();
  opt.start_paused = true;
  opt.tenant_quota = 2;
  FactorService svc(opt);

  const Csr a = service_matrix();
  auto f1 = svc.submit(a, std::nullopt, "greedy", 0);
  auto f2 = svc.submit(gen_value_drift(a, 0.1, 1), std::nullopt, "greedy", 0);
  try {
    svc.submit(gen_value_drift(a, 0.1, 2), std::nullopt, "greedy", 0);
    FAIL() << "third in-flight job for a quota-2 tenant must be rejected";
  } catch (const FactorError& e) {
    EXPECT_EQ(FaultKind::QuotaExceeded, e.kind());
    EXPECT_EQ("admission", e.phase());
  }
  // The quota is per tenant: another tenant admits fine.
  auto f3 = svc.submit(gen_value_drift(a, 0.1, 3), std::nullopt, "modest", 0);

  svc.resume();
  EXPECT_NO_THROW(f1.get());
  EXPECT_NO_THROW(f2.get());
  EXPECT_NO_THROW(f3.get());
  EXPECT_EQ(1u, svc.tenant_stats("greedy").quota_rejections);
  EXPECT_EQ(0u, svc.tenant_stats("modest").quota_rejections);

  // Quota counts in-flight jobs, not lifetime jobs: capacity returns as
  // futures resolve.
  EXPECT_NO_THROW(
      svc.submit(gen_value_drift(a, 0.1, 4), std::nullopt, "greedy", 0).get());

  // And a per-tenant override to zero blocks that tenant entirely.
  svc.set_tenant_quota("banned", 0);
  EXPECT_THROW(svc.submit(a, std::nullopt, "banned", 0), FactorError);
}

TEST(FactorService, FullQueueExertsBackpressureOnSubmit) {
  FactorServiceOptions opt = deterministic_options();
  opt.start_paused = true;
  opt.max_queue = 2;
  FactorService svc(opt);

  const Csr a = service_matrix();
  auto f1 = svc.submit(a, std::nullopt, "t", 0);
  auto f2 = svc.submit(gen_value_drift(a, 0.1, 1), std::nullopt, "t", 0);

  std::atomic<bool> admitted{false};
  std::future<JobResult> f3;
  std::thread producer([&] {
    f3 = svc.submit(gen_value_drift(a, 0.1, 2), std::nullopt, "t", 0);
    admitted.store(true);
  });
  // The queue is at capacity and the service is paused: the third submit
  // must block rather than buffer.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());

  svc.resume();  // a worker pops, space frees, the producer unblocks
  producer.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_NO_THROW(f1.get());
  EXPECT_NO_THROW(f2.get());
  EXPECT_NO_THROW(f3.get());
}

TEST(FactorService, HigherPriorityJobsCompleteFirst) {
  FactorServiceOptions opt = deterministic_options();
  opt.start_paused = true;
  FactorService svc(opt);

  const Csr a = service_matrix();
  auto low = svc.submit(a, std::nullopt, "t", 0);
  auto high = svc.submit(gen_value_drift(a, 0.1, 1), std::nullopt, "t", 5);
  auto mid = svc.submit(gen_value_drift(a, 0.1, 2), std::nullopt, "t", 2);
  svc.resume();
  svc.drain();

  const JobResult rl = low.get();
  const JobResult rh = high.get();
  const JobResult rm = mid.get();
  // One worker drains the paused backlog strictly by priority.
  EXPECT_LT(rh.completed_seq, rm.completed_seq);
  EXPECT_LT(rm.completed_seq, rl.completed_seq);
}

// ------------------------------------------------------------ eviction --

TEST(FactorService, LruPlansAreEvictedUnderMemoryPressure) {
  const Csr a = service_matrix(0x01);
  const Csr b = service_matrix(0x02);
  const Csr c = service_matrix(0x03);

  // Measure one plan's exact footprint, then budget the service for two.
  std::size_t footprint;
  {
    Options popt = deterministic_options().pipeline;
    footprint =
        refactor::Refactorizer(a, popt).device_footprint_bytes();
  }
  FactorServiceOptions opt = deterministic_options();
  opt.cache.memory_budget_bytes = footprint * 2 + footprint / 2;
  FactorService svc(opt);

  svc.submit(a, std::nullopt, "t", 0).get();
  svc.submit(b, std::nullopt, "t", 0).get();
  // Touch a so b is the least recently used plan.
  EXPECT_TRUE(
      svc.submit(gen_value_drift(a, 0.1, 1), std::nullopt, "t", 0).get()
          .cache_hit);
  svc.submit(c, std::nullopt, "t", 0).get();

  const auto cache = svc.stats().cache;
  EXPECT_GE(cache.evictions, 1u);
  EXPECT_LE(cache.resident_bytes, opt.cache.memory_budget_bytes);

  // a survived (recently used), b did not, c is resident.
  EXPECT_TRUE(
      svc.submit(gen_value_drift(a, 0.1, 2), std::nullopt, "t", 0).get()
          .cache_hit);
  EXPECT_TRUE(
      svc.submit(gen_value_drift(c, 0.1, 1), std::nullopt, "t", 0).get()
          .cache_hit);
  EXPECT_FALSE(
      svc.submit(gen_value_drift(b, 0.1, 1), std::nullopt, "t", 0).get()
          .cache_hit);
}

TEST(FactorService, InjectedAllocationFailureEvictsAndRetries) {
  FactorServiceOptions opt = deterministic_options();
  opt.pipeline.recovery.enabled = false;  // faults escape to the service
  FactorService svc(opt);

  const Csr a = service_matrix(0x01);
  svc.submit(a, std::nullopt, "t", 0).get();  // seeds the cache
  ASSERT_EQ(1u, svc.stats().cache.entries);

  const Csr b = service_matrix(0x02);
  JobResult r;
  {
    // One-shot: the third device allocation of b's cold build throws
    // OutOfDeviceMemory. The service must shed the cached plan and retry
    // the build rather than fail the job.
    fault::ScopedPlan plan("alloc=3");
    r = svc.submit(b, std::nullopt, "t", 0).get();
  }
  EXPECT_FALSE(r.cache_hit);
  const auto stats = svc.stats();
  EXPECT_GE(stats.build_retries, 1u);
  EXPECT_GE(stats.cache.evictions, 1u);
  EXPECT_EQ(0u, stats.failed);
  // The retried build was cached like any other cold build.
  EXPECT_TRUE(
      svc.submit(gen_value_drift(b, 0.1, 1), std::nullopt, "t", 0).get()
          .cache_hit);
}

TEST(FactorService, RetryEvictionShedsFootprintNotOneEntryPerAttempt) {
  // Regression: the cold-build OOM retry used to shed exactly one LRU
  // entry per attempt regardless of the headroom the build needs. With a
  // cache full of many small plans and a build whose estimate dwarfs
  // them, the bounded retry budget (3 attempts, 2 evictions) exhausted
  // long before meaningful headroom appeared. The retry path must evict
  // to the needed footprint — capped at the whole budget — like the
  // pre-build relief does.
  FactorServiceOptions opt = deterministic_options();
  opt.pipeline.recovery.enabled = false;  // faults escape to the service

  // Budget sized so six small plans stay comfortably resident (each
  // admission's pre-build relief sees ample headroom) ...
  const Csr small0 = service_matrix(0x10);
  std::size_t small_fp;
  {
    Options popt = opt.pipeline;
    small_fp = refactor::Refactorizer(small0, popt).device_footprint_bytes();
  }
  const std::size_t small_est = PatternCache::estimate_footprint(small0);
  opt.cache.memory_budget_bytes = 6 * small_fp + 4 * small_est;
  FactorService svc(opt);

  svc.submit(small0, std::nullopt, "t", 0).get();
  for (std::uint64_t s = 1; s < 6; ++s) {
    svc.submit(service_matrix(0x10 + s), std::nullopt, "t", 0).get();
  }
  ASSERT_EQ(6u, svc.stats().cache.entries);

  // ... while the big job's symbolic estimate exceeds the entire budget,
  // so its pre-build relief deliberately clears nothing (uncacheable
  // size) and every byte of headroom must come from the retry path.
  index_t big_n = 2000;
  Csr big = gen_circuit(big_n, 6.0, 4, 32, 0x7a);
  while (PatternCache::estimate_footprint(big) <=
         opt.cache.memory_budget_bytes) {
    big_n *= 2;
    big = gen_circuit(big_n, 6.0, 4, 32, 0x7a);
  }

  {
    // Unrecoverable: every allocation of every attempt fails.
    fault::ScopedPlan plan("alloc_prob=1.0; seed=3");
    auto doomed = svc.submit(big, std::nullopt, "t", 0);
    try {
      doomed.get();
      FAIL() << "unrecoverable injected OOM must fail the future";
    } catch (const FactorError& e) {
      EXPECT_EQ(FaultKind::DeviceOutOfMemory, e.kind());
    }
  }

  // Three attempts, two retry evictions. One-entry-per-retry would leave
  // four of the six plans resident; evicting to the (budget-capped)
  // footprint clears the whole cache on the first retry.
  const auto stats = svc.stats();
  EXPECT_EQ(2u, stats.build_retries);
  EXPECT_EQ(0u, stats.cache.entries);
  EXPECT_GE(stats.cache.evictions, 6u);
}

// ----------------------------------------------------- fault isolation --

TEST(FactorService, InjectedFaultsFailOnlyTheTargetTenantsFuture) {
  FactorServiceOptions opt = deterministic_options();
  opt.pipeline.recovery.enabled = false;
  opt.cache_enabled = true;
  FactorService svc(opt);

  const Csr shared = service_matrix(0x01);
  EXPECT_NO_THROW(svc.submit(shared, std::nullopt, "alice", 0).get());

  // Campaign hit 1: a zero pivot injected into mallory's cold build.
  {
    fault::ScopedPlan plan("pivot_zero=7");
    auto doomed =
        svc.submit(service_matrix(0x02), std::nullopt, "mallory", 0);
    try {
      doomed.get();
      FAIL() << "injected zero pivot must fail the submitting future";
    } catch (const FactorError& e) {
      EXPECT_EQ(FaultKind::ZeroPivot, e.kind());
      EXPECT_EQ(7, e.column());
    }
  }

  // The service survived and mallory's fault left the cache intact:
  // alice's plan still replays, bit for bit the same engine.
  const JobResult warm =
      svc.submit(gen_value_drift(shared, 0.1, 1), std::nullopt, "alice", 0)
          .get();
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_TRUE(warm.replayed);

  // Campaign hit 2: every allocation fails, exhausting the bounded
  // evict-and-retry budget — a structured OOM, still only mallory's.
  // The retries shed cached plans (that is the recovery path working);
  // isolation means other tenants' *futures* are untouched, not that
  // their cache entries are pinned.
  {
    fault::ScopedPlan plan("alloc_prob=1.0; seed=11");
    auto doomed =
        svc.submit(service_matrix(0x03), std::nullopt, "mallory", 0);
    try {
      doomed.get();
      FAIL() << "unrecoverable injected OOM must fail the submitting future";
    } catch (const FactorError& e) {
      EXPECT_EQ(FaultKind::DeviceOutOfMemory, e.kind());
    }
  }
  EXPECT_GE(svc.stats().cache.evictions, 1u);

  // Still serving after both hits: a brand-new tenant factors cold, and
  // the failure accounting is pinned to mallory alone.
  EXPECT_NO_THROW(
      svc.submit(service_matrix(0x04), std::nullopt, "carol", 0).get());

  EXPECT_EQ(2u, svc.tenant_stats("mallory").failed);
  EXPECT_EQ(0u, svc.tenant_stats("alice").failed);
  EXPECT_EQ(0u, svc.tenant_stats("carol").failed);
  EXPECT_EQ(2u, svc.stats().failed);
  EXPECT_EQ(3u, svc.stats().completed);
}

TEST(FactorService, DestructorDrainsQueuedJobs) {
  FactorServiceOptions opt = deterministic_options();
  opt.start_paused = true;
  std::future<JobResult> f1, f2;
  {
    FactorService svc(opt);
    const Csr a = service_matrix();
    f1 = svc.submit(a, std::nullopt, "t", 0);
    f2 = svc.submit(gen_value_drift(a, 0.1, 1), std::nullopt, "t", 0);
    // Destroyed while paused with a full backlog: shutdown resumes,
    // closes admission, and drains — no abandoned promises.
  }
  EXPECT_NO_THROW(f1.get());
  EXPECT_NO_THROW(f2.get());
}

// -------------------------------------------------------- BoundedQueue --

TEST(BoundedQueue, PopsHighestPriorityFirstFifoWithin) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.push(10, 0));
  ASSERT_TRUE(q.push(20, 5));
  ASSERT_TRUE(q.push(21, 5));
  ASSERT_TRUE(q.push(30, 2));
  EXPECT_EQ(20, q.pop());
  EXPECT_EQ(21, q.pop());
  EXPECT_EQ(30, q.pop());
  EXPECT_EQ(10, q.pop());
}

TEST(BoundedQueue, PushBlocksAtCapacityUntilAPopFreesSpace) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  EXPECT_FALSE(q.try_push(2));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(1, q.pop());
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(2, q.pop());
}

TEST(BoundedQueue, CloseDrainsRemainderThenSignalsExit) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // door closed to new work
  EXPECT_EQ(1, q.pop());    // admitted work still drains
  EXPECT_EQ(2, q.pop());
  EXPECT_EQ(std::nullopt, q.pop());  // drained: consumer exit signal
  EXPECT_TRUE(q.pop_batch(4, 1000).empty());
}

TEST(BoundedQueue, CloseUnblocksAWaitingPusher) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
  });
  EXPECT_FALSE(q.push(2));  // was blocked on capacity; close rejects it
  closer.join();
}

TEST(BoundedQueue, PopBatchLingersForCoArrivals) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.push(1));
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.push(2);
    q.push(3);
  });
  // A generous linger window lets the late co-arrivals join the batch.
  const std::vector<int> batch = q.pop_batch(3, 500000);
  late.join();
  EXPECT_EQ(3u, batch.size());
  EXPECT_EQ(3u, q.max_depth());
}

}  // namespace
}  // namespace e2elu
