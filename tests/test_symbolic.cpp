// Symbolic factorization: fill2 against the elimination oracle, and
// agreement of every driver with the sequential reference.

#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "matrix/generators.hpp"
#include "symbolic/fill2.hpp"
#include "symbolic/symbolic.hpp"

namespace e2elu::symbolic {
namespace {

// (generator kind, n-ish size, seed)
struct Case {
  const char* name;
  Csr matrix;
};

Csr make_case(int kind, index_t scale, std::uint64_t seed) {
  switch (kind) {
    case 0:
      return gen_grid2d(scale, scale);
    case 1:
      return gen_banded(scale * scale, 8, 5.0, seed);
    case 2:
      return gen_circuit(scale * scale, 4.0, 3, scale, seed);
    default:
      return gen_near_planar(scale * scale, 3.5, 6, seed);
  }
}

class SymbolicOracleTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SymbolicOracleTest, Fill2MatchesEliminationOracle) {
  const auto [kind, scale, seed] = GetParam();
  const Csr a = make_case(kind, scale, 1000 + seed);
  const Csr oracle = symbolic_elimination_oracle(a);
  const SymbolicResult ref = symbolic_reference(a);
  ASSERT_TRUE(same_pattern(oracle, ref.filled))
      << "kind=" << kind << " scale=" << scale << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SymbolicOracleTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(5, 9, 14),
                       ::testing::Values(0, 1, 2)));

TEST(SymbolicReference, FillPatternIsSupersetOfInput) {
  const Csr a = gen_circuit(300, 4.0, 4, 30, 7);
  const SymbolicResult ref = symbolic_reference(a);
  for (index_t i = 0; i < a.n; ++i) {
    for (index_t j : a.row_cols(i)) {
      EXPECT_TRUE(has_entry(ref.filled, i, j))
          << "(" << i << "," << j << ") lost";
    }
  }
  EXPECT_GE(ref.filled.nnz(), a.nnz());
}

TEST(SymbolicReference, CountsMatchRowLengths) {
  const Csr a = gen_banded(400, 10, 6.0, 11);
  const SymbolicResult ref = symbolic_reference(a);
  for (index_t i = 0; i < a.n; ++i) {
    EXPECT_EQ(ref.fill_count[i],
              ref.filled.row_ptr[i + 1] - ref.filled.row_ptr[i]);
  }
}

class DriverAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(DriverAgreementTest, AllDriversProduceTheReferencePattern) {
  const Csr a = make_case(GetParam(), 12, 42);
  const SymbolicResult ref = symbolic_reference(a);

  const SymbolicResult cpu = symbolic_cpu(a);
  EXPECT_TRUE(same_pattern(ref.filled, cpu.filled)) << "cpu";

  // Device deliberately too small for the full scratch -> forces chunking.
  // It must still hold the matrix, the counts, and the filled output, plus
  // about n/5 rows of scratch.
  const std::size_t resident_bytes =
      a.row_ptr.size() * sizeof(offset_t) +
      a.col_idx.size() * sizeof(index_t) +
      static_cast<std::size_t>(a.n) * sizeof(index_t) +
      static_cast<std::size_t>(ref.filled.nnz()) * sizeof(index_t);
  gpusim::Device dev(gpusim::DeviceSpec::v100_with_memory(
      resident_bytes +
      scratch_bytes_per_row(a.n) * std::max<std::size_t>(2, a.n / 5)));

  const SymbolicResult ooc = symbolic_out_of_core(dev, a);
  EXPECT_TRUE(same_pattern(ref.filled, ooc.filled)) << "out-of-core";
  EXPECT_GT(ooc.num_chunks, 1) << "test should actually chunk";

  const SymbolicResult dyn = symbolic_out_of_core_dynamic(dev, a);
  EXPECT_TRUE(same_pattern(ref.filled, dyn.filled)) << "dynamic";

  const SymbolicResult um = symbolic_unified_memory(dev, a, true);
  EXPECT_TRUE(same_pattern(ref.filled, um.filled)) << "um+prefetch";

  const SymbolicResult um_np = symbolic_unified_memory(dev, a, false);
  EXPECT_TRUE(same_pattern(ref.filled, um_np.filled)) << "um";
}

INSTANTIATE_TEST_SUITE_P(Kinds, DriverAgreementTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(UnifiedMemorySymbolic, PrefetchReducesFaultGroups) {
  const Csr a = gen_circuit(900, 4.0, 3, 40, 5);
  gpusim::Device dev_np(gpusim::DeviceSpec::v100_with_memory(8u << 20));
  symbolic_unified_memory(dev_np, a, false);
  gpusim::Device dev_p(gpusim::DeviceSpec::v100_with_memory(8u << 20));
  symbolic_unified_memory(dev_p, a, true);
  EXPECT_LT(dev_p.stats().page_fault_groups, dev_np.stats().page_fault_groups);
  EXPECT_GT(dev_np.stats().page_fault_groups, 0u);
}

TEST(OutOfCoreSymbolic, TransfersAreTinyComparedToUnifiedMemoryFaults) {
  const Csr a = gen_circuit(900, 4.0, 3, 40, 5);
  gpusim::Device dev_ooc(gpusim::DeviceSpec::v100_with_memory(8u << 20));
  symbolic_out_of_core(dev_ooc, a);
  EXPECT_EQ(dev_ooc.stats().page_faults, 0u);
  gpusim::Device dev_um(gpusim::DeviceSpec::v100_with_memory(8u << 20));
  symbolic_unified_memory(dev_um, a, false);
  EXPECT_GT(dev_um.stats().sim_fault_us, dev_ooc.stats().sim_transfer_us);
}

TEST(FrontierProfile, PeaksLaterForHubCircuits) {
  // Figure 3's shape: with hubs at low indices, high rows reach many
  // intermediates, so the peak frontier grows toward the end.
  const Csr a = gen_circuit(1200, 4.0, 4, 60, 9);
  const std::vector<index_t> prof = frontier_profile(a);
  // Average frontier over the last quarter should exceed the first quarter.
  double head = 0, tail = 0;
  const index_t q = a.n / 4;
  for (index_t i = 0; i < q; ++i) head += prof[i];
  for (index_t i = a.n - q; i < a.n; ++i) tail += prof[i];
  EXPECT_GT(tail, head);
}

}  // namespace
}  // namespace e2elu::symbolic

namespace e2elu::symbolic {
namespace {

class RowMergeCrossCheck
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RowMergeCrossCheck, RowMergeEqualsFill2) {
  const auto [kind, scale] = GetParam();
  const Csr a = make_case(kind, scale, 77);
  const SymbolicResult ref = symbolic_reference(a);
  const Csr merged = symbolic_rowmerge(a);
  EXPECT_TRUE(same_pattern(ref.filled, merged));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RowMergeCrossCheck,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(6, 11, 16)));

class MultipartTest : public ::testing::TestWithParam<int> {};

TEST_P(MultipartTest, AnyPartCountProducesTheReferencePattern) {
  const Csr a = make_case(2, 14, 5);  // circuit: growing frontier profile
  const SymbolicResult ref = symbolic_reference(a);
  gpusim::Device dev(gpusim::DeviceSpec::v100_with_memory(
      static_cast<std::size_t>(a.nnz()) * 64 +
      scratch_bytes_per_row(a.n) * 48));
  const SymbolicResult multi =
      symbolic_out_of_core_multipart(dev, a, GetParam());
  EXPECT_TRUE(same_pattern(ref.filled, multi.filled))
      << "parts=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Parts, MultipartTest, ::testing::Values(1, 2, 3, 5));

TEST(Multipart, RejectsZeroParts) {
  const Csr a = make_case(0, 5, 1);
  gpusim::Device dev(gpusim::DeviceSpec::v100_with_memory(64u << 20));
  EXPECT_THROW(symbolic_out_of_core_multipart(dev, a, 0), Error);
}

}  // namespace
}  // namespace e2elu::symbolic
