// Level-scheduled triangular solves and iterative refinement.

#include <gtest/gtest.h>

#include <cmath>

#include "core/sparse_lu.hpp"
#include "matrix/convert.hpp"
#include "matrix/generators.hpp"
#include "solve/triangular.hpp"
#include "support/rng.hpp"

namespace e2elu::solve {
namespace {

struct Factored {
  Csr a;
  FactorResult f;
};

Factored factor(Csr a) {
  Options opt;
  // Identity ordering so L U x = b solves the original system directly.
  opt.ordering = Ordering::None;
  opt.match_diagonal = false;
  opt.device = gpusim::DeviceSpec::v100_with_memory(64u << 20);
  Factored out;
  out.a = std::move(a);
  out.f = SparseLU(opt).factorize(out.a);
  return out;
}

std::vector<value_t> rhs(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = static_cast<value_t>(rng.next_double(-1.0, 1.0));
  return b;
}

class SolverSweep : public ::testing::TestWithParam<int> {};

TEST_P(SolverSweep, GpuSolveMatchesSequentialSubstitution) {
  Csr a;
  switch (GetParam()) {
    case 0: a = gen_grid2d(15, 15); break;
    case 1: a = gen_banded(250, 8, 5.0, 41); break;
    case 2: a = gen_circuit(250, 4.0, 2, 16, 42); break;
    default: a = gen_blocked_planar(256, 32, 3.2, 4, 43); break;
  }
  Factored fx = factor(a);

  gpusim::Device dev(gpusim::DeviceSpec::v100_with_memory(64u << 20));
  const LuSolver solver(dev, fx.f.l, fx.f.u);
  const std::vector<value_t> b = rhs(a.n, 7);
  const std::vector<value_t> x_gpu = solver.solve(b);
  const std::vector<value_t> x_seq = SparseLU::solve(fx.f, b);
  ASSERT_EQ(x_gpu.size(), x_seq.size());
  for (std::size_t i = 0; i < x_gpu.size(); ++i) {
    EXPECT_NEAR(x_gpu[i], x_seq[i], 1e-10) << "i=" << i;
  }
  EXPECT_LT(SparseLU::residual(fx.a, x_gpu, b), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Kinds, SolverSweep, ::testing::Values(0, 1, 2, 3));

TEST(TriangularSolver, LevelCountsBoundedByMatrixDepth) {
  // A blocked matrix: each block's chain caps the level depth; levels
  // must be far fewer than n.
  Csr a = gen_blocked_planar(512, 64, 3.2, 4, 9);
  Factored fx = factor(a);
  gpusim::Device dev(gpusim::DeviceSpec::v100_with_memory(64u << 20));
  const TriangularSolver lower(dev, fx.f.l, true);
  EXPECT_LE(lower.num_levels(), 64 + 1);
  EXPECT_GT(lower.num_levels(), 1);
}

TEST(TriangularSolver, SolvesRunLevelParallelKernels) {
  Csr a = gen_blocked_planar(512, 64, 3.2, 4, 9);
  Factored fx = factor(a);
  gpusim::Device dev(gpusim::DeviceSpec::v100_with_memory(64u << 20));
  const LuSolver solver(dev, fx.f.l, fx.f.u);
  const auto launches_before = dev.stats().host_launches;
  solver.solve(rhs(a.n, 3));
  const auto launches = dev.stats().host_launches - launches_before;
  // One launch per level per factor — far fewer than 2n row launches.
  EXPECT_EQ(launches, static_cast<std::uint64_t>(solver.lower().num_levels() +
                                                 solver.upper().num_levels()));
}

TEST(Refine, DrivesResidualDown) {
  Csr a = gen_banded(300, 8, 5.0, 51);
  Factored fx = factor(a);
  gpusim::Device dev(gpusim::DeviceSpec::v100_with_memory(64u << 20));
  const LuSolver solver(dev, fx.f.l, fx.f.u);

  // Perturb the factors slightly so refinement has work to do.
  Csr l_bad = fx.f.l, u_bad = fx.f.u;
  for (auto& v : u_bad.values) v *= (1.0 + 1e-4);
  const LuSolver sloppy(dev, l_bad, u_bad);

  const std::vector<value_t> b = rhs(a.n, 5);
  std::vector<value_t> x;
  const std::vector<double> history = refine(fx.a, sloppy, b, x, 10, 1e-13);
  ASSERT_GE(history.size(), 2u);
  EXPECT_LT(history.back(), history.front());
  EXPECT_LT(history.back(), 1e-10);
  EXPECT_LT(SparseLU::residual(fx.a, x, b), 1e-10);
}

TEST(Refine, ConvergedSystemStopsEarly) {
  Csr a = gen_banded(150, 6, 4.0, 61);
  Factored fx = factor(a);
  gpusim::Device dev(gpusim::DeviceSpec::v100_with_memory(64u << 20));
  const LuSolver solver(dev, fx.f.l, fx.f.u);
  std::vector<value_t> x;
  const std::vector<double> history =
      refine(fx.a, solver, rhs(a.n, 6), x, 10, 1e-12);
  EXPECT_LE(history.size(), 3u);  // exact factors: immediate convergence
}

TEST(TriangularSolver, RejectsMissingDiagonal) {
  Csr l(2);
  l.row_ptr = {0, 1, 2};
  l.col_idx = {0, 0};  // row 1 lacks (1,1)
  l.values = {1.0, 0.5};
  gpusim::Device dev(gpusim::DeviceSpec::v100_with_memory(1u << 20));
  EXPECT_THROW(TriangularSolver(dev, l, true), Error);
}

}  // namespace
}  // namespace e2elu::solve

#include "solve/pipeline_solver.hpp"

namespace e2elu::solve {
namespace {

TEST(PipelineSolver, HandlesPermutedFactorizations) {
  // Full pipeline with matching + ordering: the solver must undo both
  // permutations.
  Coo coo;
  coo.n = 120;
  Rng rng(21);
  for (index_t i = 0; i < coo.n; ++i) {
    coo.add(i, (i + 3) % coo.n, 5.0);  // strong shifted "diagonal"
    coo.add(i, (i * 7 + 1) % coo.n, 1.0);
    coo.add(i, (i * 13 + 5) % coo.n, 0.5);
  }
  const Csr a = coo_to_csr(coo);
  Options opt;
  opt.ordering = Ordering::MinDegree;
  opt.match_diagonal = true;
  opt.device = gpusim::DeviceSpec::v100_with_memory(64u << 20);
  const FactorResult f = SparseLU(opt).factorize(a);

  gpusim::Device dev(opt.device);
  const PipelineSolver solver(dev, f);
  const std::vector<value_t> b = rhs(a.n, 8);
  const std::vector<value_t> x = solver.solve(b);
  EXPECT_LT(SparseLU::residual(a, x, b), 1e-9);

  const std::vector<value_t> xr = solver.solve_refined(a, b);
  EXPECT_LE(SparseLU::residual(a, xr, b), 1e-11);
}

TEST(PipelineSolver, MatchesHostSolveExactly) {
  const Csr a = gen_circuit(300, 4.0, 2, 20, 33);
  Options opt;
  opt.device = gpusim::DeviceSpec::v100_with_memory(64u << 20);
  const FactorResult f = SparseLU(opt).factorize(a);
  gpusim::Device dev(opt.device);
  const PipelineSolver solver(dev, f);
  const std::vector<value_t> b = rhs(a.n, 9);
  const std::vector<value_t> x_dev = solver.solve(b);
  const std::vector<value_t> x_host = SparseLU::solve(f, b);
  for (std::size_t i = 0; i < x_dev.size(); ++i) {
    EXPECT_NEAR(x_dev[i], x_host[i], 1e-11);
  }
}

}  // namespace
}  // namespace e2elu::solve
