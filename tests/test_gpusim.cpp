// The simulated device: allocation accounting, kernel execution and the
// cost model, unified-memory paging, dynamic parallelism.

#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "gpusim/device_buffer.hpp"
#include "gpusim/unified_buffer.hpp"

namespace e2elu::gpusim {
namespace {

DeviceSpec small_spec(std::size_t mem = 1u << 20) {
  return DeviceSpec::v100_with_memory(mem);
}

TEST(DeviceMemory, AllocationAccountingAndRaii) {
  Device dev(small_spec());
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  {
    DeviceBuffer<double> a(dev, 1000);
    EXPECT_EQ(dev.allocated_bytes(), 8000u);
    DeviceBuffer<int> b(dev, 10);
    EXPECT_EQ(dev.allocated_bytes(), 8040u);
  }
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(DeviceMemory, OutOfMemoryThrowsAndRollsBack) {
  Device dev(small_spec(1024));
  DeviceBuffer<char> half(dev, 600);
  EXPECT_THROW(DeviceBuffer<char>(dev, 600), OutOfDeviceMemory);
  EXPECT_EQ(dev.allocated_bytes(), 600u);  // failed alloc left no residue
  DeviceBuffer<char> rest(dev, 424);       // exactly fits
  EXPECT_EQ(dev.free_bytes(), 0u);
}

TEST(DeviceMemory, MoveTransfersOwnership) {
  Device dev(small_spec());
  DeviceBuffer<int> a(dev, 100);
  RawDeviceAllocation raw(dev, 64);
  RawDeviceAllocation moved(std::move(raw));
  EXPECT_EQ(moved.bytes(), 64u);
  EXPECT_EQ(dev.allocated_bytes(), 464u);
}

TEST(Kernel, ExecutesEveryBlockAndCountsOps) {
  Device dev(small_spec());
  std::vector<std::atomic<int>> hits(257);
  dev.launch({.name = "t", .blocks = 257, .threads_per_block = 128},
             [&](std::int64_t b, KernelContext& ctx) {
               hits[b].fetch_add(1, std::memory_order_relaxed);
               ctx.add_ops(3);
             });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(dev.stats().kernel_ops, 257u * 3);
  EXPECT_EQ(dev.stats().host_launches, 1u);
}

TEST(Kernel, LaunchOverheadChargedEvenForEmptyGrid) {
  Device dev(small_spec());
  dev.launch({.name = "empty", .blocks = 0}, [](std::int64_t, KernelContext&) {
    FAIL() << "body must not run for an empty grid";
  });
  EXPECT_EQ(dev.stats().host_launches, 1u);
  EXPECT_DOUBLE_EQ(dev.stats().sim_launch_us, dev.spec().host_launch_us);
}

TEST(Kernel, OccupancyScalesSimulatedTime) {
  // Same total ops at 160 blocks vs 16 blocks: the low-occupancy launch
  // must be ~10x slower in simulated time.
  Device dev_full(small_spec()), dev_tenth(small_spec());
  dev_full.launch({.name = "f", .blocks = 160},
                  [](std::int64_t, KernelContext& ctx) { ctx.add_ops(100); });
  dev_tenth.launch({.name = "t", .blocks = 16},
                   [](std::int64_t, KernelContext& ctx) { ctx.add_ops(1000); });
  EXPECT_NEAR(dev_tenth.stats().sim_kernel_us / dev_full.stats().sim_kernel_us,
              10.0, 1e-9);
}

TEST(Kernel, WarpEfficiencyScalesSimulatedTime) {
  Device a(small_spec()), b(small_spec());
  a.launch({.name = "x", .blocks = 160, .warp_efficiency = 1.0},
           [](std::int64_t, KernelContext& ctx) { ctx.add_ops(64); });
  b.launch({.name = "x", .blocks = 160, .warp_efficiency = 0.25},
           [](std::int64_t, KernelContext& ctx) { ctx.add_ops(64); });
  EXPECT_NEAR(b.stats().sim_kernel_us / a.stats().sim_kernel_us, 4.0, 1e-9);
}

TEST(Kernel, DynamicParallelismLaunchesAreCheaper) {
  Device dev(small_spec());
  dev.launch({.name = "host", .blocks = 1},
             [](std::int64_t, KernelContext&) {});
  const double host_cost = dev.stats().sim_launch_us;
  dev.launch({.name = "child", .blocks = 1, .from_device = true},
             [](std::int64_t, KernelContext&) {});
  const double child_cost = dev.stats().sim_launch_us - host_cost;
  EXPECT_LT(child_cost, host_cost / 4);
  EXPECT_EQ(dev.stats().device_launches, 1u);
}

TEST(Kernel, RejectsOversizedBlocks) {
  Device dev(small_spec());
  EXPECT_THROW(dev.launch({.name = "bad", .blocks = 1,
                           .threads_per_block = 2048},
                          [](std::int64_t, KernelContext&) {}),
               Error);
}

TEST(SimtEfficiency, MonotoneInDensityAndCapped) {
  const DeviceSpec spec = DeviceSpec::v100();
  EXPECT_DOUBLE_EQ(spec.simt_efficiency(32.0), 1.0);
  EXPECT_DOUBLE_EQ(spec.simt_efficiency(1000.0), 1.0);
  EXPECT_LT(spec.simt_efficiency(4.0), spec.simt_efficiency(16.0));
  EXPECT_GT(spec.simt_efficiency(0.0), 0.0);  // floor, never zero
}

TEST(Transfers, ChargedAtPcieRate) {
  Device dev(small_spec());
  dev.copy_h2d(12'000'000);  // 12 MB at 12 GB/s = 1000 us
  EXPECT_NEAR(dev.stats().sim_transfer_us, 1000.0, 1.0);
  EXPECT_EQ(dev.stats().h2d_bytes, 12'000'000u);
}

TEST(DeviceBuffer, CopiesChargeTransfers) {
  Device dev(small_spec());
  std::vector<int> host(1000, 7);
  DeviceBuffer<int> buf(dev, std::span<const int>(host));
  EXPECT_EQ(dev.stats().h2d_bytes, 4000u);
  std::vector<int> back(1000);
  buf.copy_to_host(back);
  EXPECT_EQ(back, host);
  EXPECT_EQ(dev.stats().d2h_bytes, 4000u);
}

// ---------------------------------------------------------------------------
// Unified memory
// ---------------------------------------------------------------------------

TEST(UnifiedMemory, ColdTouchFaultsOncePerPage) {
  Device dev(small_spec(1u << 22));
  UnifiedBuffer<int> buf(dev, 4096);  // 16 KiB = 4 pages at 4 KiB
  UnifiedBuffer<int>::Stream s;
  for (std::size_t i = 0; i < buf.size(); ++i) buf.gpu_at(s, i) = 1;
  EXPECT_EQ(dev.stats().page_faults, 4u);
  // Sequential pages in one stream coalesce into a single group.
  EXPECT_EQ(dev.stats().page_fault_groups, 1u);
  // Re-touch: resident, no further faults.
  for (std::size_t i = 0; i < buf.size(); ++i) buf.gpu_at(s, i) += 1;
  EXPECT_EQ(dev.stats().page_faults, 4u);
  EXPECT_EQ(buf.gpu_at(s, 100), 2);
}

TEST(UnifiedMemory, SeparateStreamsDoNotCoalesce) {
  Device dev(small_spec(1u << 22));
  UnifiedBuffer<int> buf(dev, 4096);
  UnifiedBuffer<int>::Stream s1, s2;
  buf.gpu_at(s1, 0);
  buf.gpu_at(s2, 1024);  // next page, but a different block's stream
  EXPECT_EQ(dev.stats().page_fault_groups, 2u);
}

TEST(UnifiedMemory, OversubscriptionEvictsAndRefaults) {
  // Device budget: 16 KiB = 4 pages; buffer: 8 pages.
  Device dev(small_spec(4 * 4096));
  UnifiedBuffer<int> buf(dev, 8 * 1024);
  UnifiedBuffer<int>::Stream s;
  for (std::size_t p = 0; p < 8; ++p) buf.gpu_at(s, p * 1024);
  EXPECT_EQ(dev.stats().page_faults, 8u);
  EXPECT_LE(buf.resident_pages(), buf.budget_pages());
  // Page 0 was evicted by FIFO; touching it faults again.
  buf.gpu_at(s, 0);
  EXPECT_EQ(dev.stats().page_faults, 9u);
}

TEST(UnifiedMemory, PrefetchPreventsFaults) {
  Device dev(small_spec(1u << 22));
  UnifiedBuffer<int> buf(dev, 8 * 1024);
  UnifiedBuffer<int>::Stream s;
  buf.prefetch(0, buf.size());
  for (std::size_t i = 0; i < buf.size(); i += 64) buf.gpu_at(s, i);
  EXPECT_EQ(dev.stats().page_faults, 0u);
  EXPECT_GT(dev.stats().prefetch_bytes, 0u);
}

TEST(UnifiedMemory, EvictAllResetsResidency) {
  Device dev(small_spec(1u << 22));
  UnifiedBuffer<int> buf(dev, 1024);
  UnifiedBuffer<int>::Stream s;
  buf.gpu_at(s, 0);
  const auto faults_before = dev.stats().page_faults;
  buf.evict_all();
  buf.gpu_at(s, 0);
  EXPECT_EQ(dev.stats().page_faults, faults_before + 1);
}

TEST(UnifiedMemory, HostSpanEvictsFromDevice) {
  Device dev(small_spec(1u << 22));
  UnifiedBuffer<int> buf(dev, 1024);
  UnifiedBuffer<int>::Stream s;
  buf.gpu_at(s, 0) = 5;
  auto host = buf.host_span();
  EXPECT_EQ(host[0], 5);
  EXPECT_EQ(buf.resident_pages(), 0u);
}

TEST(DeviceStats, PercentagesAreConsistent) {
  Device dev(small_spec());
  EXPECT_EQ(dev.stats().fault_time_pct(), 0.0);  // no time at all
  dev.launch({.name = "w", .blocks = 160},
             [](std::int64_t, KernelContext& ctx) { ctx.add_ops(32000); });
  UnifiedBuffer<int> buf(dev, 1024);
  UnifiedBuffer<int>::Stream s;
  buf.gpu_at(s, 0);
  const auto& st = dev.stats();
  EXPECT_GT(st.fault_time_pct(), 0.0);
  EXPECT_LE(st.fault_time_pct(), 100.0);
  EXPECT_NEAR(st.sim_total_us(), st.sim_kernel_us + st.sim_launch_us +
                                     st.sim_transfer_us + st.sim_fault_us,
              1e-9);
}

// ---------------------------------------------------------------------------
// Streams, events, and the overlap-aware time model
// ---------------------------------------------------------------------------

TEST(Streams, SerialWorkKeepsElapsedEqualToTotal) {
  Device dev(small_spec(1u << 22));
  dev.launch({.name = "a", .blocks = 160},
             [](std::int64_t, KernelContext& ctx) { ctx.add_ops(32000); });
  dev.copy_h2d(1 << 20);
  dev.launch({.name = "b", .blocks = 16},
             [](std::int64_t, KernelContext& ctx) { ctx.add_ops(1000); });
  // No streams: everything serializes, so the overlap-aware wall clock
  // must equal the summed component times.
  EXPECT_NEAR(dev.stats().sim_elapsed_us, dev.stats().sim_total_us(), 1e-9);
  EXPECT_NEAR(dev.synchronize(), dev.stats().sim_total_us(), 1e-9);
}

TEST(Streams, ConcurrentKernelsOverlapInTheSimClock) {
  Device dev(small_spec());
  const double L = dev.spec().host_launch_us;
  // One kernel's time at full occupancy: 160 blocks * 200k ops = 100 us.
  const auto body = [](std::int64_t, KernelContext& ctx) {
    ctx.add_ops(200'000);
  };
  const double K = 160.0 * 200'000 / dev.spec().gpu_ops_per_us;
  {
    Stream s1(dev), s2(dev);
    dev.launch({.name = "k1", .blocks = 160, .stream = &s1}, body);
    dev.launch({.name = "k2", .blocks = 160, .stream = &s2}, body);
    // Host issue serializes (2L); the kernels themselves overlap: the
    // second starts at 2L, so completion is 2L + K, not 2L + 2K.
    EXPECT_NEAR(s1.ready_us(), L + K, 1e-9);
    EXPECT_NEAR(s2.ready_us(), 2 * L + K, 1e-9);
    EXPECT_NEAR(dev.elapsed_us(), 2 * L + K, 1e-9);
  }
  EXPECT_LT(dev.elapsed_us(), dev.stats().sim_total_us() - K / 2);
  // Destroying the streams joined their timelines into the default one.
  EXPECT_NEAR(dev.synchronize(), 2 * L + K, 1e-9);
}

TEST(Streams, DefaultStreamLaunchIsAFullBarrier) {
  Device dev(small_spec());
  const double L = dev.spec().host_launch_us;
  const auto body = [](std::int64_t, KernelContext& ctx) {
    ctx.add_ops(200'000);
  };
  const double K = 160.0 * 200'000 / dev.spec().gpu_ops_per_us;
  Stream s(dev);
  dev.launch({.name = "async", .blocks = 160, .stream = &s}, body);
  // A null-stream launch starts only after the async work completes and
  // drags every timeline with it.
  dev.launch({.name = "sync", .blocks = 160}, body);
  EXPECT_NEAR(dev.elapsed_us(), (L + K) + (L + K), 1e-9);
  EXPECT_NEAR(s.ready_us(), dev.elapsed_us(), 1e-9);
}

TEST(Streams, EventOrdersWorkAcrossStreams) {
  Device dev(small_spec());
  const double L = dev.spec().host_launch_us;
  const auto body = [](std::int64_t, KernelContext& ctx) {
    ctx.add_ops(200'000);
  };
  const double K = 160.0 * 200'000 / dev.spec().gpu_ops_per_us;
  Stream s1(dev), s2(dev);
  dev.launch({.name = "produce", .blocks = 160, .stream = &s1}, body);
  Event done;
  done.record(s1);
  EXPECT_NEAR(done.timestamp_us(), L + K, 1e-9);
  s2.wait(done);  // consumer ordered after the producer, not after 0
  dev.launch({.name = "consume", .blocks = 160, .stream = &s2}, body);
  EXPECT_NEAR(s2.ready_us(), (L + K) + K, 1e-9);
}

TEST(Streams, LaunchOnForeignStreamIsRejected) {
  Device a(small_spec()), b(small_spec());
  Stream sb(b);
  EXPECT_THROW(a.launch({.name = "x", .blocks = 1, .stream = &sb},
                        [](std::int64_t, KernelContext&) {}),
               Error);
}

TEST(FusedLaunch, AmortizesOverheadAndCountsLevels) {
  Device dev(small_spec());
  dev.launch({.name = "fused", .blocks = 8, .fused_levels = 5},
             [](std::int64_t, KernelContext& ctx) { ctx.add_ops(10); });
  EXPECT_EQ(dev.stats().host_launches, 1u);
  EXPECT_EQ(dev.stats().fused_launches, 1u);
  EXPECT_EQ(dev.stats().fused_levels, 5u);
  // One launch overhead regardless of how many levels were folded in.
  EXPECT_DOUBLE_EQ(dev.stats().sim_launch_us, dev.spec().host_launch_us);
  // An unfused launch records nothing in the fused counters.
  dev.launch({.name = "plain", .blocks = 8},
             [](std::int64_t, KernelContext& ctx) { ctx.add_ops(10); });
  EXPECT_EQ(dev.stats().fused_launches, 1u);
  EXPECT_THROW(dev.launch({.name = "bad", .blocks = 1, .fused_levels = 0},
                          [](std::int64_t, KernelContext&) {}),
               Error);
}

TEST(Occupancy, WeightedKernelTimeTracksGridSize) {
  Device dev(small_spec());
  dev.launch({.name = "sixteenth", .blocks = 10},
             [](std::int64_t, KernelContext& ctx) { ctx.add_ops(1000); });
  const auto& st = dev.stats();
  // 10 of 160 blocks resident: weighted time is 1/16 of kernel time.
  EXPECT_NEAR(st.sim_occupancy_us, st.sim_kernel_us / 16.0, 1e-12);
  EXPECT_NEAR(st.avg_occupancy(), 1.0 / 16.0, 1e-12);
}

}  // namespace
}  // namespace e2elu::gpusim
