// Tracing layer (trace/): span nesting and parentage, attribute
// propagation, per-span DeviceStats delta attribution (phase deltas must
// tile the device's global counters), exporter output validity, ring
// overwrite accounting, and the disabled-tracer zero-allocation fast
// path.

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/sparse_lu.hpp"
#include "matrix/generators.hpp"
#include "trace/export.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace e2elu::trace {
namespace {

/// Minimal recursive-descent JSON syntax checker — enough to prove the
/// exporters emit well-formed JSON (objects, arrays, strings with
/// escapes, numbers, literals), without pulling in a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (; *lit != '\0'; ++lit) {
      if (pos_ >= s_.size() || s_[pos_] != *lit) return false;
      ++pos_;
    }
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

const SpanRecord* find_span(const std::vector<SpanRecord>& spans,
                            const char* name) {
  for (const SpanRecord& r : spans) {
    if (r.name != nullptr && std::string(r.name) == name) return &r;
  }
  return nullptr;
}

const Attr* find_attr(const SpanRecord& r, const char* key) {
  for (std::uint32_t a = 0; a < r.num_attrs; ++a) {
    if (r.attrs[a].key != nullptr && std::string(r.attrs[a].key) == key) {
      return &r.attrs[a];
    }
  }
  return nullptr;
}

/// Arms the tracer (no file outputs) with a clean slate and disarms it
/// again on scope exit, so tests don't leak recording state.
struct Recording {
  Recording(TraceConfig cfg = {}) {
    Tracer::instance().enable(std::move(cfg));
    Tracer::instance().clear();
  }
  ~Recording() {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
};

TEST(Trace, DisabledSpansCostNoAllocationsAndRecordNothing) {
  Tracer& tracer = Tracer::instance();
  tracer.disable();
  tracer.clear();
  const std::uint64_t allocs_before = tracer.allocations();
  for (int i = 0; i < 1000; ++i) {
    TRACE_SPAN("noop", {{"i", i}, {"what", "disabled"}});
  }
  EXPECT_EQ(tracer.allocations(), allocs_before);
  EXPECT_TRUE(tracer.collect().empty());
}

TEST(Trace, SpansNestWithParentLinksAndDepths) {
  Recording rec;
  {
    Span outer("outer");
    {
      Span mid("mid");
      TRACE_SPAN("inner");
    }
    { TRACE_SPAN("sibling"); }
  }
  Tracer::instance().disable();

  const std::vector<SpanRecord> spans = Tracer::instance().collect();
  ASSERT_EQ(spans.size(), 4u);
  const SpanRecord* outer = find_span(spans, "outer");
  const SpanRecord* mid = find_span(spans, "mid");
  const SpanRecord* inner = find_span(spans, "inner");
  const SpanRecord* sibling = find_span(spans, "sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(mid, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(sibling, nullptr);

  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(mid->parent, outer->id);
  EXPECT_EQ(mid->depth, 1u);
  EXPECT_EQ(inner->parent, mid->id);
  EXPECT_EQ(inner->depth, 2u);
  EXPECT_EQ(sibling->parent, outer->id);
  EXPECT_EQ(sibling->depth, 1u);

  // Start times respect nesting; durations contain the children.
  EXPECT_LE(outer->start_us, mid->start_us);
  EXPECT_LE(mid->start_us, inner->start_us);
  EXPECT_GE(outer->start_us + outer->dur_us, inner->start_us + inner->dur_us);
}

TEST(Trace, AttributesPropagateIncludingPostHocOnes) {
  Recording rec;
  {
    Span span("attrs", {{"level", 7}, {"type", "B"}});
    span.attr("warp_eff", 0.5);
  }
  Tracer::instance().disable();

  const std::vector<SpanRecord> spans = Tracer::instance().collect();
  ASSERT_EQ(spans.size(), 1u);
  const SpanRecord& r = spans[0];
  ASSERT_EQ(r.num_attrs, 3u);

  const Attr* level = find_attr(r, "level");
  ASSERT_NE(level, nullptr);
  EXPECT_EQ(level->value.kind, AttrValue::Kind::Int);
  EXPECT_EQ(level->value.i, 7);

  const Attr* type = find_attr(r, "type");
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(type->value.kind, AttrValue::Kind::Str);
  EXPECT_STREQ(type->value.s, "B");

  const Attr* eff = find_attr(r, "warp_eff");
  ASSERT_NE(eff, nullptr);
  EXPECT_EQ(eff->value.kind, AttrValue::Kind::Float);
  EXPECT_DOUBLE_EQ(eff->value.f, 0.5);
}

TEST(Trace, AttributeOverflowIsDroppedNotFatal) {
  Recording rec;
  {
    Span span("overflow");
    for (int i = 0; i < 2 * static_cast<int>(SpanRecord::kMaxAttrs); ++i) {
      span.attr("k", i);
    }
  }
  Tracer::instance().disable();
  const std::vector<SpanRecord> spans = Tracer::instance().collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].num_attrs, SpanRecord::kMaxAttrs);
}

TEST(Trace, PhaseDeltasTileTheDeviceGlobalCounters) {
  Recording rec;
  Options opt;
  opt.device = gpusim::DeviceSpec::v100_with_memory(8u << 20);
  const Csr a = gen_grid2d(24, 24);
  const FactorResult f = SparseLU(opt).factorize(a);
  Tracer::instance().disable();

  const std::vector<SpanRecord> spans = Tracer::instance().collect();
  const SpanRecord* root = find_span(spans, "factorize");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->depth, 0u);
  ASSERT_GE(root->device_id, 0);

  // The root span wraps the pipeline's entire Device lifetime, so its
  // delta IS the device's global counters.
  EXPECT_DOUBLE_EQ(root->delta.sim_total_us(), f.device_stats.sim_total_us());
  EXPECT_EQ(root->delta.host_launches, f.device_stats.host_launches);
  EXPECT_EQ(root->delta.device_launches, f.device_stats.device_launches);
  EXPECT_EQ(root->delta.kernel_ops, f.device_stats.kernel_ops);
  EXPECT_EQ(root->delta.h2d_bytes, f.device_stats.h2d_bytes);
  EXPECT_EQ(root->delta.d2h_bytes, f.device_stats.d2h_bytes);

  // The depth-1 phase spans partition that work: their deltas must sum
  // to the root's (every launch happens inside exactly one phase).
  double child_sim = 0;
  std::uint64_t child_launches = 0, child_ops = 0;
  for (const SpanRecord& r : spans) {
    if (r.parent != root->id) continue;
    ASSERT_GE(r.device_id, 0) << r.name;
    child_sim += r.delta.sim_total_us();
    child_launches += r.delta.host_launches + r.delta.device_launches;
    child_ops += r.delta.kernel_ops;
  }
  EXPECT_NEAR(child_sim, f.device_stats.sim_total_us(),
              1e-9 * (1.0 + f.device_stats.sim_total_us()));
  EXPECT_EQ(child_launches,
            f.device_stats.host_launches + f.device_stats.device_launches);
  EXPECT_EQ(child_ops, f.device_stats.kernel_ops);
}

TEST(Trace, ChromeTraceExportIsValidJsonWithBothClockTracks) {
  Recording rec;
  Options opt;
  opt.device = gpusim::DeviceSpec::v100_with_memory(8u << 20);
  (void)SparseLU(opt).factorize(gen_grid2d(12, 12));
  Tracer::instance().disable();
  const std::vector<SpanRecord> spans = Tracer::instance().collect();
  ASSERT_FALSE(spans.empty());

  std::ostringstream os;
  write_chrome_trace(os, spans);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  // Wall-clock events, simulated-time events, and the metadata naming
  // the simulated-device clock domain must all be present.
  EXPECT_NE(json.find("\"cat\": \"e2elu\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"e2elu-sim\""), std::string::npos);
  EXPECT_NE(json.find("e2elu simulated device time"), std::string::npos);
  EXPECT_NE(json.find("\"sim_kernel_us\""), std::string::npos);
}

TEST(Trace, MetricsExportIsValidJson) {
  Recording rec;
  {
    TRACE_SPAN("metrics_probe", {{"k", 1}});
  }
  Tracer::instance().disable();

  MetricsRegistry registry;
  registry.counter("manual.count").add(3);
  registry.gauge("manual.gauge").set(1.5);
  registry.histogram("manual.histo").record(10.0);
  registry.histogram("manual.histo").record(1000.0);
  publish_span_metrics(Tracer::instance().collect(), registry);

  std::ostringstream os;
  write_metrics_json(os, registry);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"manual.count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"span.metrics_probe.count\": 1"), std::string::npos);
}

TEST(Trace, RingBufferOverwritesOldestAndCountsDrops) {
  TraceConfig small_ring;
  small_ring.ring_capacity = 4;
  Recording rec(small_ring);
  // A fresh thread gets a fresh ring sized by the active config (the main
  // thread's ring was registered earlier with the default capacity).
  std::thread worker([] {
    for (int i = 0; i < 10; ++i) {
      TRACE_SPAN("ring", {{"i", i}});
    }
  });
  worker.join();
  Tracer::instance().disable();

  const std::vector<SpanRecord> spans = Tracer::instance().collect();
  std::vector<std::int64_t> kept;
  for (const SpanRecord& r : spans) {
    if (r.name != nullptr && std::string(r.name) == "ring") {
      kept.push_back(find_attr(r, "i")->value.i);
    }
  }
  // 10 pushed into 4 slots: the newest 4 survive, oldest-first.
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front(), 6);
  EXPECT_EQ(kept.back(), 9);
  EXPECT_EQ(Tracer::instance().dropped(), 6u);
}

TEST(Trace, SummaryPrinterRuns) {
  Recording rec;
  {
    Span outer("sum_outer");
    TRACE_SPAN("sum_inner");
  }
  Tracer::instance().disable();
  std::ostringstream os;
  print_summary(os, Tracer::instance().collect());
  EXPECT_NE(os.str().find("sum_outer"), std::string::npos);
  EXPECT_NE(os.str().find("sum_inner"), std::string::npos);
}

}  // namespace
}  // namespace e2elu::trace
