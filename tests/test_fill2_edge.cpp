// fill2 edge cases and structural properties beyond the random sweeps.

#include <gtest/gtest.h>

#include "matrix/convert.hpp"
#include "matrix/generators.hpp"
#include "symbolic/fill2.hpp"
#include "symbolic/symbolic.hpp"
#include "symbolic/workspace.hpp"

namespace e2elu::symbolic {
namespace {

SymbolicResult run(const Csr& a) { return symbolic_reference(a); }

TEST(Fill2Edge, OneByOne) {
  Coo coo;
  coo.n = 1;
  coo.add(0, 0, 2.0);
  const SymbolicResult r = run(coo_to_csr(coo));
  EXPECT_EQ(r.filled.nnz(), 1);
  EXPECT_EQ(r.fill_count[0], 1);
}

TEST(Fill2Edge, DiagonalMatrixHasNoFill) {
  Coo coo;
  coo.n = 50;
  for (index_t i = 0; i < 50; ++i) coo.add(i, i, 1.0);
  const Csr a = coo_to_csr(coo);
  const SymbolicResult r = run(a);
  EXPECT_TRUE(same_pattern(a, r.filled));
}

TEST(Fill2Edge, LowerBidiagonalHasNoFill) {
  // L-shaped input: elimination introduces nothing new.
  Coo coo;
  coo.n = 40;
  for (index_t i = 0; i < 40; ++i) {
    coo.add(i, i, 2.0);
    if (i > 0) coo.add(i, i - 1, 1.0);
  }
  const Csr a = coo_to_csr(coo);
  EXPECT_TRUE(same_pattern(a, run(a).filled));
}

TEST(Fill2Edge, ArrowheadFillsCompletely) {
  // Dense first row+column: eliminating column 0 couples everything, so
  // the factor is completely dense — the classic worst-case ordering.
  Coo coo;
  const index_t n = 24;
  coo.n = n;
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 4.0);
    if (i > 0) {
      coo.add(0, i, 1.0);
      coo.add(i, 0, 1.0);
    }
  }
  const SymbolicResult r = run(coo_to_csr(coo));
  EXPECT_EQ(r.filled.nnz(), static_cast<offset_t>(n) * n);
}

TEST(Fill2Edge, ReversedArrowheadHasNoFill) {
  // Same arrowhead with the hub at the LAST index: no valid intermediate
  // vertices exist, so there is zero fill — ordering is everything.
  Coo coo;
  const index_t n = 24;
  coo.n = n;
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 4.0);
    if (i + 1 < n) {
      coo.add(n - 1, i, 1.0);
      coo.add(i, n - 1, 1.0);
    }
  }
  const Csr a = coo_to_csr(coo);
  EXPECT_TRUE(same_pattern(a, run(a).filled));
}

TEST(Fill2Edge, PathGraphFillMatchesTheorem) {
  // 0-1-2-...-k chain plus an edge (0,k): eliminating the chain in order
  // creates fill along the way.
  Coo coo;
  const index_t n = 10;
  coo.n = n;
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 2.0);
  for (index_t i = 0; i + 1 < n; ++i) {
    coo.add(i, i + 1, 1.0);
    coo.add(i + 1, i, 1.0);
  }
  const Csr a = coo_to_csr(coo);
  // Tridiagonal: no fill.
  EXPECT_TRUE(same_pattern(a, run(a).filled));
}

TEST(Fill2Edge, FilledPatternIsIdempotent) {
  // Factorizing the filled pattern produces no further fill (closure).
  const Csr a = gen_circuit(300, 4.0, 3, 24, 15);
  Csr filled = run(a).filled;
  filled.values.assign(static_cast<std::size_t>(filled.nnz()), 1.0);
  const Csr twice = run(filled).filled;
  EXPECT_TRUE(same_pattern(filled, twice));
}

TEST(Fill2Edge, BoundedQueueOverflowIsDetected) {
  const Csr a = gen_circuit(400, 4.0, 3, 32, 16);
  const index_t n = a.n;
  // Find a row with a real frontier, then give it a 1-slot queue.
  const std::vector<index_t> prof = frontier_profile(a);
  index_t victim = -1;
  for (index_t i = 0; i < n; ++i) {
    if (prof[i] > 2) victim = i;
  }
  ASSERT_GE(victim, 0);
  std::vector<index_t> slice(PlainWorkspace::slots(n, 1), -1);
  PlainWorkspace ws = PlainWorkspace::from_slice_bounded({slice}, n, 1);
  const RowStats st = fill2_row(a, victim, ws, [](index_t) {});
  EXPECT_TRUE(st.overflow);
}

TEST(Fill2Edge, StampReuseAcrossRowsIsSafe) {
  // One workspace slice processing many rows back-to-back must not leak
  // visited state between rows (the stamping invariant).
  const Csr a = gen_banded(300, 7, 5.0, 17);
  const SymbolicResult ref = run(a);
  std::vector<index_t> slice(PlainWorkspace::slots(a.n, a.n), -1);
  PlainWorkspace ws = PlainWorkspace::from_slice({slice}, a.n);
  // Deliberately interleaved order.
  for (index_t i = 0; i < a.n; i += 3) {
    const RowStats st = fill2_row(a, i, ws, [](index_t) {});
    EXPECT_EQ(st.fill_count, ref.fill_count[i]) << "row " << i;
  }
  for (index_t i = a.n - 1; i >= 0; i -= 3) {
    const RowStats st = fill2_row(a, i, ws, [](index_t) {});
    EXPECT_EQ(st.fill_count, ref.fill_count[i]) << "row " << i;
  }
}

TEST(Fill2Edge, WorkspaceLayoutIsAligned) {
  for (index_t n : {1, 2, 63, 64, 65, 127, 1000}) {
    for (std::size_t qcap : {std::size_t{1}, std::size_t{7},
                             static_cast<std::size_t>(n)}) {
      const std::size_t slots = PlainWorkspace::slots(n, qcap);
      EXPECT_EQ(slots % 2, 0u) << "slice size must stay 8-byte aligned";
      std::vector<index_t> slice(slots, -1);
      PlainWorkspace ws = PlainWorkspace::from_slice_bounded({slice}, n, qcap);
      EXPECT_EQ(ws.queue_capacity(), qcap);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ws.bm.data()) % 8, 0u);
      // Touch the extremes; ASan (in sanitizer builds) guards overruns.
      ws.fill(static_cast<std::size_t>(n) - 1) = 1;
      ws.queue(0, qcap - 1) = 1;
      ws.queue(1, qcap - 1) = 1;
      ws.bitmap((static_cast<std::size_t>(n) + 63) / 64 - 1) = 1;
    }
  }
}

}  // namespace
}  // namespace e2elu::symbolic
